// Package automata compiles TESLA assertions (internal/spec) into the
// finite-state automata that drive program instrumentation (§4.1 of the
// paper). Each assertion becomes an Automaton: an alphabet of Symbols
// (observable program events), a deterministic transition table, and the
// init/cleanup structure libtesla (internal/core) needs to manage instances.
package automata

import (
	"fmt"

	"tesla/internal/core"
	"tesla/internal/spec"
)

// SymKind classifies automaton alphabet symbols.
type SymKind int

const (
	// KindBoundBegin is entry into the assertion's bounding function; it
	// drives the «init» transition.
	KindBoundBegin SymKind = iota
	// KindBoundEnd is return from the bounding function; it drives
	// «cleanup» transitions.
	KindBoundEnd
	// KindSite is execution reaching the assertion site. It binds every
	// scope variable the assertion names and is always required: if no
	// instance can accept it, the assertion has failed.
	KindSite
	// KindFuncEntry observes a function call (arguments available).
	KindFuncEntry
	// KindFuncExit observes a function return (arguments + return value).
	KindFuncExit
	// KindFieldAssign observes a structure-field assignment.
	KindFieldAssign
	// KindInCallStack is the pseudo-event `incallstack(fn)`: synthesised
	// by the dispatcher immediately before the site event when fn is on
	// the call stack (fig. 7).
	KindInCallStack
)

func (k SymKind) String() string {
	switch k {
	case KindBoundBegin:
		return "bound-begin"
	case KindBoundEnd:
		return "bound-end"
	case KindSite:
		return "site"
	case KindFuncEntry:
		return "func-entry"
	case KindFuncExit:
		return "func-exit"
	case KindFieldAssign:
		return "field-assign"
	case KindInCallStack:
		return "incallstack"
	default:
		return fmt.Sprintf("SymKind(%d)", int(k))
	}
}

// CapSrc says where a key-slot value is captured from at event time.
type CapSrc int

const (
	// CapArg captures argument Index.
	CapArg CapSrc = iota
	// CapRet captures the return value.
	CapRet
	// CapTarget captures the structure instance of a field assignment.
	CapTarget
	// CapValue captures the assigned value of a field assignment.
	CapValue
	// CapSiteVar captures scope variable Index at the assertion site.
	CapSiteVar
)

// SlotCapture tells the event translator how to populate key slot Slot.
type SlotCapture struct {
	Slot     int
	Src      CapSrc
	Index    int
	Indirect bool
}

// Symbol is one letter of an automaton's alphabet: an observable program
// event together with its static argument checks and key captures. The
// instrumenter generates one event translator per (instrumentation point,
// symbol) pair; the translator performs the Symbol's static checks and, if
// they pass, builds the key and calls core.Store.UpdateState with the
// symbol's TransitionSet.
type Symbol struct {
	ID   int
	Name string
	Kind SymKind

	// Fn is the function name (or Objective-C selector) for function
	// events, bound events and incallstack.
	Fn   string
	ObjC bool
	// Side selects caller/callee instrumentation for function events.
	Side spec.InstrSide

	// Args/Ret are the static patterns for function events.
	Args []spec.ArgPattern
	Ret  *spec.ArgPattern

	// Struct/Field/AssignOp/Target/Value describe field-assign events.
	Struct   string
	Field    string
	AssignOp spec.AssignOp
	Target   spec.ArgPattern
	Value    spec.ArgPattern

	// Captures populate key slots from the event.
	Captures []SlotCapture
	// ProvidesMask is the key mask of the slots this symbol binds.
	ProvidesMask uint32

	// Flags passed to UpdateState (SymRequired for sites, SymStrict for
	// strict assertions).
	Flags core.SymbolFlags
}

func (s *Symbol) String() string { return s.Name }
