package staticcheck

import (
	"fmt"
	"sort"
	"strings"
)

// productGraph records the abstract configurations the checker explored
// and the events that connect them — the reachable fragment of the
// program × automaton product. Rendered with the same Graphviz
// conventions as automata.Dot so the two graphs read side by side.
type productGraph struct {
	nodes map[string]pnode
	edges map[string]pedge
	// obls are the undischarged-obligation edges: dashed arrows from the
	// config the obligation was recorded at to a synthetic note node
	// carrying the missing fairness assumption.
	obls map[string]pobl
}

type pobl struct {
	from, label string
}

type pnode struct {
	label  string
	failed bool
	closed bool
}

type pedge struct {
	from, to, label string
}

func newProductGraph() *productGraph {
	return &productGraph{nodes: map[string]pnode{}, edges: map[string]pedge{}, obls: map[string]pobl{}}
}

// obligation records an undischarged-obligation edge from the config
// keyed by from to a synthetic node labelled with the missing assumption.
func (g *productGraph) obligation(from, label string) {
	if _, ok := g.nodes[from]; !ok {
		g.nodes[from] = pnode{label: "start", closed: true}
	}
	g.obls[from+"⇒"+label] = pobl{from: from, label: label}
}

func nodeFor(cfg config) pnode {
	if !cfg.active {
		l := "bound closed"
		if cfg.failed {
			l += "\\nfailed"
		}
		return pnode{label: l, failed: cfg.failed, closed: true}
	}
	d := [3]string{"no events", "events?", "events"}[cfg.delivered]
	l := fmt.Sprintf("lo=%s hi=%s\\n%s", cfg.lo, cfg.hi, d)
	if cfg.failed {
		l += "\\nfailed"
	}
	return pnode{label: l, failed: cfg.failed}
}

// edge records a transition from the config keyed by from to cfg.
func (g *productGraph) edge(from string, cfg config, label string) {
	to := cfg.key()
	if from == to {
		return
	}
	if _, ok := g.nodes[from]; !ok {
		// Only the entry configuration can appear as a source before it
		// has been seen as a target.
		g.nodes[from] = pnode{label: "start", closed: true}
	}
	g.nodes[to] = nodeFor(cfg)
	g.edges[from+"→"+to+"|"+label] = pedge{from: from, to: to, label: label}
}

// dot renders the graph; nodes are numbered deterministically.
func (g *productGraph) dot(name string) string {
	keys := make([]string, 0, len(g.nodes))
	for k := range g.nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	id := map[string]int{}
	for i, k := range keys {
		id[k] = i
	}

	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name+" × program")
	b.WriteString("\trankdir=TB;\n")
	b.WriteString("\tnode [shape=ellipse fontname=\"Helvetica\"];\n")
	for _, k := range keys {
		n := g.nodes[k]
		attrs := fmt.Sprintf("label=\"%s\"", n.label)
		if n.failed {
			attrs += " shape=doublecircle color=red"
		} else if n.closed {
			attrs += " style=dashed"
		}
		fmt.Fprintf(&b, "\tc%d [%s];\n", id[k], attrs)
	}
	edges := make([]pedge, 0, len(g.edges))
	for _, e := range g.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		if edges[i].to != edges[j].to {
			return edges[i].to < edges[j].to
		}
		return edges[i].label < edges[j].label
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "\tc%d -> c%d [label=\"%s\"];\n", id[e.from], id[e.to], e.label)
	}
	// Obligation edges: one note node per distinct assumption, dashed
	// orange arrows from every config that recorded it.
	labels := map[string]int{}
	var labelKeys []string
	for _, o := range g.obls {
		if _, ok := labels[o.label]; !ok {
			labels[o.label] = 0
			labelKeys = append(labelKeys, o.label)
		}
	}
	sort.Strings(labelKeys)
	for i, l := range labelKeys {
		labels[l] = i
		fmt.Fprintf(&b, "\to%d [label=\"assume %s\" shape=note style=dashed color=orange];\n", i, l)
	}
	oblKeys := make([]string, 0, len(g.obls))
	for k := range g.obls {
		oblKeys = append(oblKeys, k)
	}
	sort.Strings(oblKeys)
	for _, k := range oblKeys {
		o := g.obls[k]
		fmt.Fprintf(&b, "\tc%d -> o%d [label=\"«incomplete»\" style=dashed color=orange];\n",
			id[o.from], labels[o.label])
	}
	b.WriteString("}\n")
	return b.String()
}
