package core

import (
	"fmt"
	"sync/atomic"
	"time"
)

// This file is the store's supervision layer: the configurable failure-mode
// spectrum of §4.4, plus the isolation machinery that keeps the *monitored*
// system alive when the *monitor* misbehaves.
//
//   - FailureAction reproduces the paper's panic / printf / DTrace-probe
//     spectrum (§4.4.2) per automaton class: stop the program, report and
//     continue, or hand the violation to a user callback.
//   - OverflowPolicy governs instance-table exhaustion (§4.4.1 prescribes
//     reporting overflow rather than allocating in constrained paths):
//     drop the new instance, evict the oldest, or quarantine a class that
//     keeps overflowing so one hot automaton cannot poison the rest.
//   - Handler notifications are buffered during the store's critical
//     section and dispatched after every lock is released, with panics
//     recovered, counted and — past a limit — the handler quarantined. A
//     re-entrant or slow handler can therefore no longer stall monitored
//     threads or kill the program.
//   - Health counters account for every degradation decision per class, so
//     a degraded monitor is observable instead of a silent lie.

// FailureAction selects what a violation does to the monitored program,
// per class (§4.4.2: kernel panic / fail-stop versus best-effort printf or
// DTrace-probe reporting).
type FailureAction int

const (
	// FailDefault defers to the store's default action (which itself
	// defaults to FailStop when Store.FailFast is set, FailReport
	// otherwise).
	FailDefault FailureAction = iota
	// FailReport notifies the handler and continues: the paper's
	// best-effort printf/DTrace modes.
	FailReport
	// FailStop returns the violation as an error from UpdateState, the
	// paper's kernel-panic/abort mode; the instrumented program is
	// expected to stop on it.
	FailStop
	// FailCallback notifies the handler and additionally invokes the
	// class's OnViolation callback (the pluggable-probe mode).
	FailCallback
)

func (a FailureAction) String() string {
	switch a {
	case FailDefault:
		return "default"
	case FailReport:
		return "report"
	case FailStop:
		return "stop"
	case FailCallback:
		return "callback"
	default:
		return "FailureAction(?)"
	}
}

// OverflowPolicy selects how a class degrades when its preallocated
// instance block is exhausted.
type OverflowPolicy int

const (
	// OverflowDefault defers to the store's default policy (DropNew).
	OverflowDefault OverflowPolicy = iota
	// DropNew reports the overflow and drops the new instance — the
	// paper's behaviour: preallocation is adjusted on the next run.
	DropNew
	// EvictOldest reports the overflow, evicts the oldest live instance
	// with the same key mask as the newcomer (falling back to the oldest
	// overall) and claims its slot. Monitoring stays live for recent
	// bindings at the cost of forgetting the oldest obligation (accounted
	// in Health); the same-mask preference keeps unkeyed parent
	// instances — the clone sources — alive as long as possible.
	EvictOldest
	// QuarantineClass drops new instances like DropNew but, after
	// QuarantineAfter consecutive overflows, takes the whole class out of
	// service: instances are expunged and events are suppressed (and
	// counted) until the class re-arms by event count or elapsed time.
	QuarantineClass
)

func (p OverflowPolicy) String() string {
	switch p {
	case OverflowDefault:
		return "default"
	case DropNew:
		return "drop-new"
	case EvictOldest:
		return "evict-oldest"
	case QuarantineClass:
		return "quarantine"
	default:
		return "OverflowPolicy(?)"
	}
}

// ParseFailureAction maps the String spellings back onto actions, for CLI
// flags.
func ParseFailureAction(s string) (FailureAction, error) {
	for _, a := range []FailureAction{FailDefault, FailReport, FailStop, FailCallback} {
		if s == a.String() {
			return a, nil
		}
	}
	return FailDefault, fmt.Errorf("unknown failure action %q (want default, report, stop or callback)", s)
}

// ParseOverflowPolicy maps the String spellings back onto policies, for CLI
// flags.
func ParseOverflowPolicy(s string) (OverflowPolicy, error) {
	for _, p := range []OverflowPolicy{OverflowDefault, DropNew, EvictOldest, QuarantineClass} {
		if s == p.String() {
			return p, nil
		}
	}
	return OverflowDefault, fmt.Errorf("unknown overflow policy %q (want default, drop-new, evict-oldest or quarantine)", s)
}

// Defaults for the quarantine policy when the class and store leave them
// unset.
const (
	// DefaultQuarantineAfter is the consecutive-overflow threshold that
	// trips QuarantineClass.
	DefaultQuarantineAfter = 8
	// DefaultRearmEvents is how many suppressed events re-arm a
	// quarantined class when neither an event count nor a duration is
	// configured.
	DefaultRearmEvents = 256
	// DefaultHandlerPanicLimit is how many recovered handler panics
	// quarantine the handler.
	DefaultHandlerPanicLimit = 3
)

// Health is one class's cumulative degradation accounting in one store.
// Counters only ever grow; Reset and re-arms do not clear them.
type Health struct {
	// Violations is the number of detected assertion violations.
	Violations uint64
	// Overflows counts instance allocations that found no free slot
	// (including those subsequently satisfied by eviction).
	Overflows uint64
	// Evictions counts live instances evicted by EvictOldest.
	Evictions uint64
	// Suppressed counts events ignored while the class was quarantined.
	Suppressed uint64
	// Quarantines counts times the class entered quarantine.
	Quarantines uint64
	// HandlerPanics counts recovered handler panics while dispatching
	// this class's notifications.
	HandlerPanics uint64
}

// Degraded reports whether any monitor-side degradation was recorded.
func (h Health) Degraded() bool {
	return h.Overflows|h.Evictions|h.Suppressed|h.Quarantines|h.HandlerPanics != 0
}

// Merge adds o's counters into h. It is how health accounting rolls up
// across stores within a monitor, and across monitors within a fleet
// aggregation service.
func (h *Health) Merge(o Health) {
	h.Violations += o.Violations
	h.Overflows += o.Overflows
	h.Evictions += o.Evictions
	h.Suppressed += o.Suppressed
	h.Quarantines += o.Quarantines
	h.HandlerPanics += o.HandlerPanics
}

// ClassHealth is one class's health snapshot, as reported by a store or
// merged across stores by the monitor.
type ClassHealth struct {
	Class string
	// Quarantined reports whether the class is currently out of service.
	Quarantined bool
	// Live is the class's live-instance count at snapshot time.
	Live int
	Health
}

// supervision is a store's resolved supervision configuration, fixed at
// construction.
type supervision struct {
	failure         FailureAction
	overflow        OverflowPolicy
	quarantineAfter int
	rearmEvents     int
	rearmAfter      time.Duration
	panicLimit      int
	allocFail       func(cls *Class) bool
	now             func() time.Time
}

func (sv *supervision) init(o StoreOpts) {
	sv.failure = o.Failure
	sv.overflow = o.Overflow
	sv.quarantineAfter = o.QuarantineAfter
	sv.rearmEvents = o.RearmEvents
	sv.rearmAfter = o.RearmAfter
	sv.panicLimit = o.HandlerPanicLimit
	if sv.panicLimit <= 0 {
		sv.panicLimit = DefaultHandlerPanicLimit
	}
	sv.allocFail = o.AllocFail
	sv.now = o.Clock
	if sv.now == nil {
		sv.now = time.Now
	}
}

// classPolicy is the per-class supervision configuration after resolving
// class fields against store defaults, cached at registration so the event
// hot path reads plain fields.
type classPolicy struct {
	failure         FailureAction // FailDefault ⇒ consult Store.FailFast
	overflow        OverflowPolicy
	quarantineAfter int
	rearmEvents     int
	rearmAfter      time.Duration
	// injected records that the store has a fault injector armed: any
	// allocation can then fail, so the sharded store's lock planner cannot
	// use free-headroom reasoning to skip the all-stripes fallback that
	// EvictOldest's class-wide victim scan needs.
	injected bool
}

func (sv *supervision) resolve(cls *Class) classPolicy {
	p := classPolicy{
		failure:         cls.Failure,
		overflow:        cls.Overflow,
		quarantineAfter: cls.QuarantineAfter,
		rearmEvents:     cls.RearmEvents,
		rearmAfter:      cls.RearmAfter,
		injected:        sv.allocFail != nil,
	}
	if p.failure == FailDefault {
		p.failure = sv.failure
	}
	if p.overflow == OverflowDefault {
		p.overflow = sv.overflow
	}
	if p.overflow == OverflowDefault {
		p.overflow = DropNew
	}
	if p.quarantineAfter <= 0 {
		p.quarantineAfter = sv.quarantineAfter
	}
	if p.quarantineAfter <= 0 {
		p.quarantineAfter = DefaultQuarantineAfter
	}
	if p.rearmEvents <= 0 {
		p.rearmEvents = sv.rearmEvents
	}
	if p.rearmAfter <= 0 {
		p.rearmAfter = sv.rearmAfter
	}
	if p.rearmEvents <= 0 && p.rearmAfter <= 0 {
		p.rearmEvents = DefaultRearmEvents
	}
	return p
}

// failureIn maps FailDefault onto the store's legacy FailFast switch.
func (p classPolicy) failureIn(s *Store) FailureAction {
	if p.failure != FailDefault {
		return p.failure
	}
	if s.FailFast {
		return FailStop
	}
	return FailReport
}

// quarState is the quarantine bookkeeping shared by both store
// implementations. The reference store mutates it under the store mutex;
// the sharded store guards it with shardedClass.quarMu and mirrors the
// quarantined bit into an atomic for the lock-free fast path.
type quarState struct {
	// streak counts consecutive overflows since the last successful
	// allocation, reset or re-arm.
	streak int
	// suppressed counts events ignored since quarantine entry (the
	// event-count re-arm trigger; Health.Suppressed is the cumulative
	// total).
	suppressed int
	// rearmAt is the timed re-arm deadline (zero when not timed).
	rearmAt time.Time
}

// rearmDue reports whether a quarantined class should come back.
func (q *quarState) rearmDue(p classPolicy, now func() time.Time) bool {
	if p.rearmEvents > 0 && q.suppressed >= p.rearmEvents {
		return true
	}
	if p.rearmAfter > 0 && !now().Before(q.rearmAt) {
		return true
	}
	return false
}

// enter initialises quarantine state at entry.
func (q *quarState) enter(p classPolicy, now func() time.Time) {
	q.streak = 0
	q.suppressed = 0
	if p.rearmAfter > 0 {
		q.rearmAt = now().Add(p.rearmAfter)
	} else {
		q.rearmAt = time.Time{}
	}
}

// ---------------------------------------------------------------------------
// Buffered notification dispatch.

// noteKind tags one buffered handler notification.
type noteKind uint8

const (
	noteNew noteKind = iota
	noteClone
	noteTransition
	noteAccept
	noteFail
	noteOverflow
	noteEvict
	noteQuarantine
)

// note is one handler notification, captured by value while the store's
// locks are held and dispatched afterwards. Instances are copied: once the
// locks are released the originating slots may be reused.
type note struct {
	kind   noteKind
	cls    *Class
	inst   Instance
	parent Instance
	from   uint32
	to     uint32
	symbol string
	v      *Violation
	key    Key
	on     bool // noteQuarantine: entering (true) or re-armed (false)
}

// noteBufSize is the inline capacity of a noteBuf. One event rarely
// produces more notifications than it has candidate instances, so the
// common case stays on the stack; pathological events spill to the heap.
const noteBufSize = 24

// noteBuf accumulates an event's notifications. The zero value is ready.
type noteBuf struct {
	arr   [noteBufSize]note
	n     int
	spill []note
}

func (nb *noteBuf) add(n note) {
	if nb.n < len(nb.arr) {
		nb.arr[nb.n] = n
		nb.n++
		return
	}
	nb.spill = append(nb.spill, n)
}

func (nb *noteBuf) empty() bool { return nb.n == 0 && len(nb.spill) == 0 }

// dispatch delivers the buffered notifications to the store's handler,
// outside any store lock, recovering panics. Each recovered panic is
// counted against the note's class; past the store's panic limit the
// handler is quarantined and later notifications are dropped (counted in
// NotesDropped). Violation callbacks (FailCallback) run under the same
// isolation.
func (s *Store) dispatch(nb *noteBuf) {
	if nb.empty() {
		return
	}
	h := s.Handler()
	for i := 0; i < nb.n; i++ {
		s.deliverNote(h, &nb.arr[i])
	}
	for i := range nb.spill {
		s.deliverNote(h, &nb.spill[i])
	}
}

func (s *Store) deliverNote(h Handler, n *note) {
	if s.hquar.Load() {
		s.notesDropped.Add(1)
		return
	}
	s.notify(h, n)
	if n.kind == noteFail && n.cls.OnViolation != nil {
		pol := s.policyOf(n.cls)
		if pol.failureIn(s) == FailCallback {
			s.callback(n.cls, n.v)
		}
	}
}

// notify invokes one handler method under panic isolation.
func (s *Store) notify(h Handler, n *note) {
	defer s.recoverHandler(n.cls)
	switch n.kind {
	case noteNew:
		h.InstanceNew(n.cls, &n.inst)
	case noteClone:
		h.InstanceClone(n.cls, &n.parent, &n.inst)
	case noteTransition:
		h.Transition(n.cls, &n.inst, n.from, n.to, n.symbol)
	case noteAccept:
		h.Accept(n.cls, &n.inst)
	case noteFail:
		h.Fail(n.v)
	case noteOverflow:
		h.Overflow(n.cls, n.key)
	case noteEvict:
		h.Evict(n.cls, &n.inst)
	case noteQuarantine:
		h.Quarantine(n.cls, n.on)
	}
}

// callback invokes a class's OnViolation under the same isolation as
// handler methods.
func (s *Store) callback(cls *Class, v *Violation) {
	defer s.recoverHandler(cls)
	cls.OnViolation(v)
}

// recoverHandler absorbs a handler panic: count it store-wide and per
// class, and quarantine the handler once the limit is reached.
func (s *Store) recoverHandler(cls *Class) {
	if r := recover(); r != nil {
		s.panicMu.Lock()
		if s.panicBy == nil {
			s.panicBy = make(map[string]uint64)
		}
		s.panicBy[cls.Name]++
		s.panicMu.Unlock()
		if int(s.hpanics.Add(1)) >= s.sv.panicLimit {
			s.hquar.Store(true)
		}
	}
}

// policyOf returns the cached per-class policy (resolving lazily for
// classes that were registered before supervision existed in a path that
// bypassed resolution — never on the hot path).
func (s *Store) policyOf(cls *Class) classPolicy {
	if s.nshards > 0 {
		if sc := s.shardedClassOf(cls); sc != nil {
			return sc.pol
		}
	} else {
		s.mu.Lock()
		cs, ok := s.classes[cls]
		s.mu.Unlock()
		if ok {
			return cs.pol
		}
	}
	return s.sv.resolve(cls)
}

// HandlerPanics returns the recovered handler-panic count, store-wide.
func (s *Store) HandlerPanics() uint64 { return s.hpanics.Load() }

// HandlerQuarantined reports whether the handler has been taken out of
// service after repeated panics.
func (s *Store) HandlerQuarantined() bool { return s.hquar.Load() }

// NotesDropped returns the number of notifications dropped because the
// handler was quarantined.
func (s *Store) NotesDropped() uint64 { return s.notesDropped.Load() }

// handlerPanicsFor returns the per-class recovered-panic count.
func (s *Store) handlerPanicsFor(class string) uint64 {
	s.panicMu.Lock()
	defer s.panicMu.Unlock()
	return s.panicBy[class]
}

// Health returns the class's degradation accounting in this store. A zero
// Health is returned for unregistered classes.
func (s *Store) Health(cls *Class) Health {
	var h Health
	if s.nshards > 0 {
		sc := s.shardedClassOf(cls)
		if sc == nil {
			return h
		}
		h = sc.healthSnapshot()
	} else {
		s.mu.Lock()
		if cs := s.classes[cls]; cs != nil {
			h = cs.health
		}
		s.mu.Unlock()
	}
	h.HandlerPanics = s.handlerPanicsFor(cls.Name)
	return h
}

// HealthReport snapshots every registered class's health, in registration
// order.
func (s *Store) HealthReport() []ClassHealth {
	var out []ClassHealth
	if s.nshards > 0 {
		t := s.stab.Load()
		for _, sc := range t.order {
			ch := ClassHealth{
				Class:       sc.cls.Name,
				Quarantined: sc.quarantined.Load(),
				Health:      sc.healthSnapshot(),
			}
			if !ch.Quarantined {
				ch.Live = int(sc.live.Load())
			}
			ch.HandlerPanics = s.handlerPanicsFor(sc.cls.Name)
			out = append(out, ch)
		}
		return out
	}
	s.mu.Lock()
	for _, cs := range s.order {
		ch := ClassHealth{
			Class:       cs.cls.Name,
			Quarantined: cs.quarantined,
			Health:      cs.health,
		}
		if !cs.quarantined {
			ch.Live = cs.live
		}
		out = append(out, ch)
	}
	s.mu.Unlock()
	for i := range out {
		out[i].HandlerPanics = s.handlerPanicsFor(out[i].Class)
	}
	return out
}

// Quarantined reports whether cls is currently quarantined in this store.
func (s *Store) Quarantined(cls *Class) bool {
	if s.nshards > 0 {
		sc := s.shardedClassOf(cls)
		return sc != nil && sc.quarantined.Load()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := s.classes[cls]
	return cs != nil && cs.quarantined
}

// shardedHealth is the sharded store's atomic mirror of Health.
type shardedHealth struct {
	violations  atomic.Uint64
	overflows   atomic.Uint64
	evictions   atomic.Uint64
	suppressed  atomic.Uint64
	quarantines atomic.Uint64
}

func (sh *shardedHealth) snapshot() Health {
	return Health{
		Violations:  sh.violations.Load(),
		Overflows:   sh.overflows.Load(),
		Evictions:   sh.evictions.Load(),
		Suppressed:  sh.suppressed.Load(),
		Quarantines: sh.quarantines.Load(),
	}
}
