package main

import (
	"bytes"
	"flag"
	"os"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden file")

// TestDemoMatchesGolden pins the fleet aggregation pipeline end to end:
// three live producers, exact per-producer accounting, and the failure
// attributed to exactly the process whose input breaks the assertion. Run
// with -update after an intentional format change.
func TestDemoMatchesGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := demo(&buf, "testdata"); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	const golden = "testdata/demo.golden"
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Fatalf("demo output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, got, want)
	}

	// Contract checks independent of formatting: the violating producer is
	// the only one attributed, and nothing was dropped anywhere.
	if !strings.Contains(got, "batch-9  x1") {
		t.Errorf("failure not attributed to batch-9 alone:\n%s", got)
	}
	if strings.Contains(got, "web-1    x") || strings.Contains(got, "web-2    x") {
		t.Errorf("failure wrongly attributed to a passing producer:\n%s", got)
	}
	if !strings.Contains(got, "0 dropped anywhere") {
		t.Errorf("local fleet run reported drops:\n%s", got)
	}
	if strings.Contains(got, "DISCONNECTED") {
		t.Errorf("a producer disconnected:\n%s", got)
	}
}
