// Package ssl is a miniature OpenSSL: a DER (ASN.1) codec, a toy DSA-style
// signature scheme split across libcrypto/libssl layers, an EVP
// verification API with the tri-state return value whose misuse caused
// CVE-2008-5077, a malicious s_server that forges an ASN.1 tag inside a
// key-exchange signature, and a libfetch-style client — the §2.1/§3.5.1
// case-study stack, rebuilt so the figure 6 TESLA assertion can observe a
// call in one library from an assertion in another.
package ssl

import (
	"errors"
	"fmt"
)

// ASN.1 universal tags used by the signature encoding.
const (
	TagInteger   = 0x02
	TagBitString = 0x03
	TagSequence  = 0x30
)

// ErrDER reports a malformed DER structure — the “exceptional failure”
// inside libcrypto that the vulnerable libssl conflated with success.
var ErrDER = errors.New("ssl: malformed DER structure")

// AppendTLV encodes one tag-length-value element (definite short/long
// length forms).
func AppendTLV(dst []byte, tag byte, val []byte) []byte {
	dst = append(dst, tag)
	n := len(val)
	switch {
	case n < 0x80:
		dst = append(dst, byte(n))
	case n <= 0xff:
		dst = append(dst, 0x81, byte(n))
	default:
		dst = append(dst, 0x82, byte(n>>8), byte(n))
	}
	return append(dst, val...)
}

// ParseTLV decodes the element at the front of b, returning the tag, value
// and remaining bytes.
func ParseTLV(b []byte) (tag byte, val, rest []byte, err error) {
	if len(b) < 2 {
		return 0, nil, nil, ErrDER
	}
	tag = b[0]
	n := int(b[1])
	hdr := 2
	switch {
	case n < 0x80:
	case n == 0x81:
		if len(b) < 3 {
			return 0, nil, nil, ErrDER
		}
		n = int(b[2])
		hdr = 3
	case n == 0x82:
		if len(b) < 4 {
			return 0, nil, nil, ErrDER
		}
		n = int(b[2])<<8 | int(b[3])
		hdr = 4
	default:
		return 0, nil, nil, ErrDER
	}
	if len(b) < hdr+n {
		return 0, nil, nil, ErrDER
	}
	return tag, b[hdr : hdr+n], b[hdr+n:], nil
}

// AppendInteger encodes a non-negative integer in DER (minimal big-endian
// two's complement).
func AppendInteger(dst []byte, v int64) []byte {
	if v < 0 {
		panic("ssl: negative DER integers unsupported")
	}
	var buf []byte
	for {
		buf = append([]byte{byte(v & 0xff)}, buf...)
		v >>= 8
		if v == 0 {
			break
		}
	}
	// A leading 1-bit would read as negative; pad with a zero octet.
	if buf[0]&0x80 != 0 {
		buf = append([]byte{0}, buf...)
	}
	return AppendTLV(dst, TagInteger, buf)
}

// ParseInteger decodes a DER INTEGER. A BIT STRING (or anything else) in
// its place is the forged-tag condition: an error, not a value.
func ParseInteger(b []byte) (v int64, rest []byte, err error) {
	tag, val, rest, err := ParseTLV(b)
	if err != nil {
		return 0, nil, err
	}
	if tag != TagInteger {
		return 0, nil, fmt.Errorf("%w: expected INTEGER, found tag 0x%02x", ErrDER, tag)
	}
	if len(val) == 0 || len(val) > 9 {
		return 0, nil, ErrDER
	}
	for _, c := range val {
		v = v<<8 | int64(c)
	}
	return v, rest, nil
}

// EncodeSignature encodes a DSA-style (r, s) signature as
// SEQUENCE { INTEGER r, INTEGER s }.
func EncodeSignature(r, s int64) []byte {
	var body []byte
	body = AppendInteger(body, r)
	body = AppendInteger(body, s)
	return AppendTLV(nil, TagSequence, body)
}

// ForgeSignatureTag re-encodes a signature so that the first of the two
// large integers claims to have the BIT STRING type rather than INTEGER —
// the malicious key-exchange signature of §3.5.1.
func ForgeSignatureTag(sig []byte) []byte {
	out := append([]byte{}, sig...)
	// SEQUENCE header, then the first element's tag byte.
	_, body, _, err := ParseTLV(out)
	if err != nil || len(body) == 0 {
		return out
	}
	// body aliases out's backing array; flip the first element's tag.
	body[0] = TagBitString
	return out
}

// DecodeSignature parses SEQUENCE { INTEGER r, INTEGER s }.
func DecodeSignature(sig []byte) (r, s int64, err error) {
	tag, body, _, err := ParseTLV(sig)
	if err != nil {
		return 0, 0, err
	}
	if tag != TagSequence {
		return 0, 0, fmt.Errorf("%w: expected SEQUENCE", ErrDER)
	}
	r, body, err = ParseInteger(body)
	if err != nil {
		return 0, 0, err
	}
	s, _, err = ParseInteger(body)
	if err != nil {
		return 0, 0, err
	}
	return r, s, nil
}
