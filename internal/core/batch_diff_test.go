package core

import (
	"math/rand"
	"reflect"
	"testing"

	"tesla/internal/faultinject"
)

// Batched-vs-unbatched store differential: UpdateBatch must be
// observationally equivalent to the same ops applied one at a time with
// UpdateState — identical verdicts, live counts, instance sets, quarantine
// state, health counters and notification multisets at every flush point.
// Schedules are the randomised supervision sweeps from differential_test.go;
// flush points are permuted per schedule (a random flush probability rides
// on top of the forced batch-size boundary) so run splits land everywhere,
// including mid-quarantine, mid-overflow and across cleanup expunges. Both
// the single-mutex reference batch path and the sharded lookahead batch
// path are swept, with and without injected allocation failures.

// runBatchDifferential drives one schedule through a sequential store and a
// batched store (same shard count, same injected fault schedule), comparing
// at every flush boundary. batchSize caps a batch; flushP adds random early
// flushes so the same schedule is split differently across seeds.
func runBatchDifferential(t *testing.T, seed int64, shards, batchSize int, rate float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cls := &Class{
		Name: "batchdiff", States: 8, Limit: 2 + rng.Intn(8),
		Overflow:        []OverflowPolicy{DropNew, EvictOldest, QuarantineClass}[rng.Intn(3)],
		QuarantineAfter: 1 + rng.Intn(3),
		RearmEvents:     1 + rng.Intn(8),
	}
	states := uint32(3 + rng.Intn(3))

	injSeq := faultinject.New(uint64(seed))
	injBat := faultinject.New(uint64(seed))
	if rate > 0 {
		injSeq.SetRate(faultinject.SiteAlloc, rate)
		injBat.SetRate(faultinject.SiteAlloc, rate)
	}

	hseq := &noteHandler{}
	hbat := &noteHandler{}
	seq := NewStoreOpts(StoreOpts{
		Context: Global, Handler: hseq, Shards: shards,
		AllocFail: func(c *Class) bool { return injSeq.Should(faultinject.SiteAlloc, c.Name) },
	})
	bat := NewStoreOpts(StoreOpts{
		Context: Global, Handler: hbat, Shards: shards,
		AllocFail: func(c *Class) bool { return injBat.Should(faultinject.SiteAlloc, c.Name) },
	})
	seq.Register(cls)
	bat.Register(cls)

	var pending []BatchOp
	seqErrs := 0 // sequential errors in the pending chunk
	flushAt := -1
	flush := func(i int) {
		if len(pending) == 0 {
			return
		}
		err := bat.UpdateBatch(pending)
		if (err != nil) != (seqErrs > 0) {
			t.Fatalf("seed %d shards %d batch %d event %d: verdict diverged: batch err=%v, sequential errors=%d",
				seed, shards, batchSize, i, err, seqErrs)
		}
		pending = pending[:0]
		seqErrs = 0
		flushAt = i
	}
	compare := func(i int) {
		if lr, lb := seq.LiveCount(cls), bat.LiveCount(cls); lr != lb {
			t.Fatalf("seed %d shards %d batch %d event %d: live diverged: seq=%d batched=%d",
				seed, shards, batchSize, i, lr, lb)
		}
		if ir, ib := instSet(seq, cls), instSet(bat, cls); !reflect.DeepEqual(ir, ib) {
			t.Fatalf("seed %d shards %d batch %d event %d: instances diverged:\nseq:     %v\nbatched: %v",
				seed, shards, batchSize, i, ir, ib)
		}
		if qr, qb := seq.Quarantined(cls), bat.Quarantined(cls); qr != qb {
			t.Fatalf("seed %d shards %d batch %d event %d: quarantine diverged: seq=%v batched=%v",
				seed, shards, batchSize, i, qr, qb)
		}
		if hr, hb := healthOf(seq, cls), healthOf(bat, cls); hr != hb {
			t.Fatalf("seed %d shards %d batch %d event %d: health diverged:\nseq:     %v\nbatched: %v",
				seed, shards, batchSize, i, hr, hb)
		}
		if nr, nb := hseq.sorted(), hbat.sorted(); !reflect.DeepEqual(nr, nb) {
			t.Fatalf("seed %d shards %d batch %d event %d: notifications diverged:\nseq:     %v\nbatched: %v",
				seed, shards, batchSize, i, nr, nb)
		}
	}

	for i, ev := range randSchedule(rng, states, 48) {
		switch ev.op {
		case "reset":
			flush(i)
			seq.Reset()
			bat.Reset()
			compare(i)
		case "resetclass":
			flush(i)
			seq.ResetClass(cls)
			bat.ResetClass(cls)
			compare(i)
		default:
			if seq.UpdateState(cls, ev.symbol, ev.flags, ev.key, ev.ts) != nil {
				seqErrs++
			}
			pending = append(pending, BatchOp{Cls: cls, Symbol: ev.symbol, Flags: ev.flags, Key: ev.key, TS: ev.ts})
			if len(pending) >= batchSize || rng.Intn(6) == 0 {
				flush(i)
				compare(i)
			}
		}
	}
	flush(48)
	compare(48)
	if flushAt < 0 {
		t.Fatalf("seed %d: schedule produced no flush", seed)
	}
	if fs, fb := injSeq.TotalFired(), injBat.TotalFired(); fs != fb {
		t.Fatalf("seed %d: injectors diverged: seq fired %d, batched %d", seed, fs, fb)
	}
}

// TestBatchDifferentialStore sweeps ≥1000 schedules over batch sizes
// {1, 7, 64} (1 degenerates every batch to a single op — the batch plumbing
// alone; 64 is batchRunMax, so the 48-event schedules also exercise runs at
// and below the lookahead window cap) and both store implementations.
func TestBatchDifferentialStore(t *testing.T) {
	n := 0
	for _, size := range []int{1, 7, 64} {
		for i := 0; i < 400; i++ {
			shards := []int{1, 2, 4, 8, 16}[i%5]
			runBatchDifferential(t, int64(20000+i), shards, size, 0)
			n++
		}
	}
	if n < 1000 {
		t.Fatalf("only %d schedules, want >= 1000", n)
	}
}

// TestBatchDifferentialInjected repeats the sweep with allocation failures
// injected at 1%, 10% and 50%: batch-window splits must not change which
// events a degraded class drops, suppresses or evicts.
func TestBatchDifferentialInjected(t *testing.T) {
	for _, rate := range []float64{0.01, 0.10, 0.50} {
		for i := 0; i < 120; i++ {
			shards := []int{1, 2, 4, 8, 16}[i%5]
			size := []int{1, 7, 64}[i%3]
			runBatchDifferential(t, int64(30000+i), shards, size, rate)
		}
	}
}
