// mackernel replays the §3.5.2 case study: the kernel is annotated with 96
// assertions (table 1); running workloads over buggy kernels reproduces the
// three findings — mac_socket_check_poll missing on the kqueue path, the
// wrong credential passed in one dynamic call graph, and a credential
// change without P_SUGID — and the coverage report shows 26 of the 37
// inter-process assertions unexercised by the test suite.
//
//	go run ./examples/mackernel
package main

import (
	"fmt"
	"os"
	"strings"

	"tesla/internal/core"
	"tesla/internal/dtrace"
	"tesla/internal/kernel"
	"tesla/internal/monitor"
)

func main() {
	fmt.Printf("kernel assertion corpus: %d assertions (MF=%d MS=%d MP=%d M=%d P=%d)\n\n",
		len(kernel.Assertions(kernel.SetAll)),
		len(kernel.Assertions(kernel.SetMF)),
		len(kernel.Assertions(kernel.SetMS)),
		len(kernel.Assertions(kernel.SetMP)),
		len(kernel.Assertions(kernel.SetM)),
		len(kernel.Assertions(kernel.SetP)))

	// Finding 1: the kqueue path skips the MAC poll check.
	run("kqueue path misses mac_socket_check_poll",
		kernel.BugConfig{KqueueMissingPollCheck: true},
		func(th *kernel.Thread) {
			pair, _ := kernel.SetupOLTP(th)
			th.Poll(pair.Client)   // checked
			th.Select(pair.Client) // checked
			th.Kevent(pair.Client) // not checked — violation
		})

	// Finding 2: one dynamic call graph passes the cached file credential
	// instead of the active credential.
	run("select path authorises with file_cred instead of active_cred",
		kernel.BugConfig{WrongCredential: true},
		func(th *kernel.Thread) {
			pair, _ := kernel.SetupOLTP(th)
			th.Setuid(1001) // active credential now differs from the cached one
			th.Select(pair.Client)
		})

	// Finding 3: credentials change without setting P_SUGID.
	run("setuid does not set P_SUGID",
		kernel.BugConfig{MissingSUGID: true},
		func(th *kernel.Thread) {
			th.Setuid(1001)
		})

	coverage()
	aggregate()
}

func run(title string, bugs kernel.BugConfig, workload func(*kernel.Thread)) {
	handler := core.NewCountingHandler()
	k, _, err := kernel.Boot(kernel.Release, kernel.SetAll, bugs, monitor.Options{Handler: handler})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	workload(k.NewThread())
	fmt.Printf("bug: %s\n", title)
	for _, v := range handler.Violations() {
		fmt.Printf("  detected: %v\n", v)
	}
	if len(handler.Violations()) == 0 {
		fmt.Println("  (no violation?)")
	}
	fmt.Println()
}

// coverage reproduces the §3.5.2 test-coverage finding.
func coverage() {
	handler := core.NewCountingHandler()
	autos, err := kernel.CompileAssertions(kernel.SetP)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mon := monitor.MustNew(monitor.Options{Handler: handler}, autos...)
	k := kernel.New(kernel.Config{Monitor: mon})
	th := k.NewThread()
	kernel.ExerciseAll(th) // the inter-process access-control test suite

	missed := kernel.Unexercised(handler, autos)
	var procfs, cpuset, rt, other int
	for _, name := range missed {
		switch {
		case strings.HasPrefix(name, "P:procfs"):
			procfs++
		case strings.HasPrefix(name, "P:cpuset"):
			cpuset++
		case strings.HasPrefix(name, "P:rtprio"):
			rt++
		default:
			other++
		}
	}
	fmt.Printf("coverage: %d of %d inter-process assertions not exercised by the test suite\n",
		len(missed), len(autos))
	fmt.Printf("  procfs (deprecated, disabled by default): %d\n", procfs)
	fmt.Printf("  CPUSET (added after the test suite):      %d\n", cpuset)
	fmt.Printf("  POSIX real-time scheduling:               %d\n", rt)
	fmt.Println()
}

// aggregate shows the kernel default handler: DTrace-style aggregation of
// transition counts instead of stderr traces (§4.4.2).
func aggregate() {
	h := dtrace.NewHandler(nil)
	k, _, err := kernel.Boot(kernel.Release, kernel.SetMS, kernel.BugConfig{}, monitor.Options{Handler: h})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	th := k.NewThread()
	pair, _ := kernel.SetupOLTP(th)
	for i := 0; i < 100; i++ {
		kernel.OLTPTransaction(th, pair)
	}
	fmt.Println("DTrace-style aggregation over 100 OLTP transactions (top entries):")
	keys := h.Transitions.Keys()
	for i, key := range keys {
		if i >= 8 {
			break
		}
		fmt.Printf("  %-70s %6d\n", key, h.Transitions.Count(key))
	}
}
