package automata

import (
	"testing"

	"tesla/internal/spec"
)

func TestStateSetOps(t *testing.T) {
	s := NewStateSet(3, 1, 2, 1, 3)
	if s.Key() != "1,2,3" {
		t.Fatalf("key = %q", s.Key())
	}
	if !s.Has(2) || s.Has(4) {
		t.Fatal("membership broken")
	}
	u := s.Union(NewStateSet(0, 2, 5))
	if u.Key() != "0,1,2,3,5" {
		t.Fatalf("union = %q", u.Key())
	}
	// Union must not mutate operands.
	if s.Key() != "1,2,3" {
		t.Fatalf("union mutated receiver: %q", s.Key())
	}
	if NewStateSet().Key() != "" || NewStateSet().String() != "{}" {
		t.Fatal("empty set forms")
	}
}

func TestMoveMatchesTransTable(t *testing.T) {
	auto := compileSrc(t, "fig9",
		`TESLA_SYSCALL_PREVIOUSLY(mac_socket_check_poll(ANY(ptr), so) == 0)`, nil)
	for sym := range auto.Symbols {
		for _, tr := range auto.Trans[sym] {
			to, ok := auto.Move(tr.From, sym)
			if !ok || to != tr.To {
				t.Fatalf("Move(%d, %d) = %d,%v; table says %d", tr.From, sym, to, ok, tr.To)
			}
		}
	}
	// A state with no edge for a symbol reports no move.
	if _, ok := auto.Move(9999, 0); ok {
		t.Fatal("phantom move")
	}
}

func TestDetStepCondStep(t *testing.T) {
	auto := compileSrc(t, "two",
		`TESLA_SYSCALL_PREVIOUSLY(called(audit(ANY(int))))`, nil)
	begin := auto.BoundBegin().ID
	var start uint32
	for _, tr := range auto.Trans[begin] {
		start = tr.To
	}
	evt := auto.SymbolByName("audit(X) [callee]")
	if evt == nil {
		// Name formatting may differ; find the one function-entry symbol.
		for _, s := range auto.Symbols {
			if s.Kind == KindFuncEntry {
				evt = s
			}
		}
	}
	if evt == nil {
		t.Fatal("no event symbol")
	}
	set := NewStateSet(start)
	det := auto.DetStep(set, evt.ID)
	cond := auto.CondStep(set, evt.ID)
	to, ok := auto.Move(start, evt.ID)
	if !ok {
		t.Fatalf("no edge for %s from %d", evt.Name, start)
	}
	if det.Key() != NewStateSet(to).Key() {
		t.Fatalf("DetStep = %s, want {%d}", det, to)
	}
	// CondStep keeps the source state (an instance may skip the event).
	if !cond.Has(start) || !cond.Has(to) {
		t.Fatalf("CondStep = %s, want both %d and %d", cond, start, to)
	}
	// A state with no edge stays under DetStep.
	if auto.DetStep(NewStateSet(to), evt.ID).Key() != NewStateSet(to).Key() {
		t.Fatal("DetStep must keep stuck states")
	}
	// Cleanup legality follows the bound-end column.
	end := auto.BoundEnd().ID
	for _, tr := range auto.Trans[end] {
		if !auto.CanCleanup(tr.From) {
			t.Fatalf("state %d has a cleanup edge but CanCleanup is false", tr.From)
		}
	}
}

func TestSymbolDeterministic(t *testing.T) {
	mk := func(args ...spec.ArgPattern) *Symbol {
		return &Symbol{Kind: KindFuncEntry, Fn: "f", Args: args}
	}
	if !mk(spec.Any("int"), spec.Var("x")).Deterministic() {
		t.Error("ANY + single var must be deterministic")
	}
	if mk(spec.Int(0)).Deterministic() {
		t.Error("constant pattern can fail to match: not deterministic")
	}
	if mk(spec.Var("x"), spec.Var("x")).Deterministic() {
		t.Error("duplicate var implies a consistency check: not deterministic")
	}
	if mk(spec.Flags(4)).Deterministic() || mk(spec.Bitmask(4)).Deterministic() {
		t.Error("flags/bitmask patterns are conditional")
	}
	ind := spec.Var("x")
	ind.Indirect = true
	if mk(ind).Deterministic() {
		t.Error("indirect pattern loads memory: not deterministic")
	}
	// Exit symbols also check the return pattern.
	ret := spec.Int(0)
	ex := &Symbol{Kind: KindFuncExit, Fn: "f", Ret: &ret}
	if ex.Deterministic() {
		t.Error("constant return pattern is conditional")
	}
	// Field assigns check target and value; OpIncr has no value pattern.
	fa := &Symbol{Kind: KindFieldAssign, Target: spec.Var("o"), Value: spec.Int(1), AssignOp: spec.OpAssign}
	if fa.Deterministic() {
		t.Error("constant value pattern is conditional")
	}
	inc := &Symbol{Kind: KindFieldAssign, Target: spec.Var("o"), Value: spec.Int(1), AssignOp: spec.OpIncr}
	if !inc.Deterministic() {
		t.Error("increment ignores the value pattern")
	}
}

func TestSymbolIndirectAccess(t *testing.T) {
	plain := &Symbol{Kind: KindFuncEntry, Args: []spec.ArgPattern{spec.Var("x")}}
	if plain.IndirectAccess() {
		t.Error("no indirection expected")
	}
	ind := spec.Var("x")
	ind.Indirect = true
	if !(&Symbol{Kind: KindFuncEntry, Args: []spec.ArgPattern{ind}}).IndirectAccess() {
		t.Error("indirect arg pattern must be flagged")
	}
	if !(&Symbol{Kind: KindFuncEntry, Captures: []SlotCapture{{Indirect: true}}}).IndirectAccess() {
		t.Error("indirect capture must be flagged")
	}
	if !(&Symbol{Kind: KindFieldAssign, Target: ind}).IndirectAccess() {
		t.Error("indirect field target must be flagged")
	}
}
