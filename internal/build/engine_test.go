package build_test

// Engine-node tests: the per-class engine image sub-cache. A warm build
// reinstalls every class's compiled engine from disk without lowering; an
// assertion edit re-lowers exactly the classes whose automata changed. Each
// build opens a fresh Cache over the same directory, so reuse is always
// through the disk layer (the cross-process case).

import (
	"strings"
	"testing"

	"tesla/internal/build"
)

// twoAssertions: two files each contributing one automaton class, so the
// engine node has something to split.
func twoAssertions() map[string]string {
	return map[string]string{
		"lib.c": `
int checksum(int x) { return x % 97; }
`,
		"a.c": `
int fa(int x) {
	int c = checksum(x);
	TESLA_WITHIN(main, previously(checksum(ANY(int)) == 0));
	return c;
}
`,
		"b.c": `
int fb(int x) {
	int c = checksum(x);
	TESLA_WITHIN(main, previously(checksum(ANY(int)) == 1));
	return c;
}
int main(int x) { return fa(x) + fb(x); }
`,
	}
}

// runDisk builds through a fresh Cache handle over dir.
func runDisk(t *testing.T, dir string, sources map[string]string) *build.Result {
	t.Helper()
	cache, err := build.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := build.Run(sources, build.Options{Instrument: true, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func engineStatus(res *build.Result) build.Status {
	for _, n := range res.Nodes {
		if n.ID == "engine" {
			return n.Status
		}
	}
	return build.StatusFailed
}

func TestEngineNodeLowersOnce(t *testing.T) {
	dir := t.TempDir()

	cold := runDisk(t, dir, twoAssertions())
	if len(cold.Autos) != 2 {
		t.Fatalf("automata = %d, want 2", len(cold.Autos))
	}
	if engineStatus(cold) != build.StatusBuilt {
		t.Fatalf("cold engine node: %s, want built", engineStatus(cold))
	}
	if cold.Engines != (build.EngineStats{Lowered: 2}) {
		t.Fatalf("cold engines = %+v, want 2 lowered", cold.Engines)
	}

	warm := runDisk(t, dir, twoAssertions())
	if engineStatus(warm) != build.StatusDiskHit {
		t.Fatalf("warm engine node: %s, want disk hit", engineStatus(warm))
	}
	if warm.Engines != (build.EngineStats{Reused: 2}) {
		t.Fatalf("warm engines = %+v, want 2 reused", warm.Engines)
	}
	// The reinstalled engines must execute: every automaton has a resident
	// engine whose plan table covers the alphabet.
	for _, a := range warm.Autos {
		e := a.Engine()
		if e == nil || len(e.Plans) != len(a.Symbols) {
			t.Fatalf("%s: engine not attached (plans=%v)", a.Name, e)
		}
	}
}

// TestAssertionEditRelowersOneClass: editing one file's assertion changes
// that class's fingerprint only — the engine node re-runs (its key moved)
// but reuses the untouched class's image.
func TestAssertionEditRelowersOneClass(t *testing.T) {
	dir := t.TempDir()
	runDisk(t, dir, twoAssertions())

	edited := twoAssertions()
	edited["b.c"] = strings.Replace(edited["b.c"],
		"checksum(ANY(int)) == 1", "checksum(ANY(int)) == 2", 1)
	incr := runDisk(t, dir, edited)

	if engineStatus(incr) != build.StatusBuilt {
		t.Fatalf("engine node after edit: %s, want built", engineStatus(incr))
	}
	if incr.Engines != (build.EngineStats{Lowered: 1, Reused: 1}) {
		t.Fatalf("engines after edit = %+v, want 1 lowered / 1 reused", incr.Engines)
	}
}

// TestBodyEditKeepsEngines: a function-body edit recompiles the file but
// reproduces the same manifest, so every fingerprint — and the engine
// node's key — is unchanged; the node disk-hits even though upstream
// automata were re-decoded.
func TestBodyEditKeepsEngines(t *testing.T) {
	dir := t.TempDir()
	runDisk(t, dir, twoAssertions())

	edited := twoAssertions()
	edited["lib.c"] = `
int checksum(int x) { return x % 89; }
`
	incr := runDisk(t, dir, edited)
	if engineStatus(incr) != build.StatusDiskHit {
		t.Fatalf("engine node after body edit: %s, want disk hit", engineStatus(incr))
	}
	if incr.Engines != (build.EngineStats{Reused: 2}) {
		t.Fatalf("engines after body edit = %+v, want 2 reused", incr.Engines)
	}
}
