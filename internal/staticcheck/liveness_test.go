package staticcheck_test

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"tesla/internal/compiler"
	"tesla/internal/csub"
	"tesla/internal/ir"
	"tesla/internal/manifest"
	"tesla/internal/staticcheck"
)

// livenessPrograms is the refinement-pass corpus: `eventually`
// obligations whose discharge depends on loop termination, constant
// propagation or interprocedural argument binding. Each entry records
// the expected verdict, whether the verdict must come from the liveness
// pass, and substrings that must appear in the proof or obligations.
var livenessPrograms = []struct {
	name       string
	src        string
	verdict    staticcheck.Verdict
	liveness   bool   // Result.Liveness must match
	proofHas   string // required substring of a Proof line ("" = none required)
	obligation string // required Obligation kind ("" = no obligations allowed)
}{
	{
		// The flush loop runs the discharge event a literal-constant
		// number of times: counted-loop ranking + trip-count >= 1.
		name: "counted_loop_eventually",
		src: `
int audit_log(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, eventually(audit_log(ANY(int))));
	return x;
}
int main(int x) {
	int w = do_work(x);
	int i = 0;
	while (i < 3) {
		int r = audit_log(i);
		i = i + 1;
	}
	return w;
}
`,
		verdict:  staticcheck.Safe,
		liveness: true,
		proofHas: "proved terminating",
	},
	{
		// Decrementing counter: same ranking argument, negative
		// back-edge variance.
		name: "counted_loop_decrement",
		src: `
int audit_log(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, eventually(audit_log(ANY(int))));
	return x;
}
int main(int x) {
	int w = do_work(x);
	int i = 5;
	while (i > 0) {
		int r = audit_log(i);
		i = i - 1;
	}
	return w;
}
`,
		verdict:  staticcheck.Safe,
		liveness: true,
		proofHas: "back-edge variance -1",
	},
	{
		// The loop bound arrives as a constant call argument: the
		// interprocedural pass propagates 4 into flush_log's frame.
		name: "interprocedural_bound",
		src: `
int audit_log(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, eventually(audit_log(ANY(int))));
	return x;
}
int flush_log(int n) {
	int i = 0;
	while (i < n) {
		int r = audit_log(i);
		i = i + 1;
	}
	return i;
}
int main(int x) {
	int w = do_work(x);
	int f = flush_log(4);
	return w;
}
`,
		verdict:  staticcheck.Safe,
		liveness: true,
		proofHas: "proved terminating",
	},
	{
		// The discharge call sits behind a constant-true branch; the
		// refinement pass prunes the path that would skip it.
		name: "const_branch_discharge",
		src: `
int audit_log(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, eventually(audit_log(ANY(int))));
	return x;
}
int main(int x) {
	int w = do_work(x);
	int flag = 1;
	if (flag > 0) {
		int r = audit_log(x);
	}
	return w;
}
`,
		verdict:  staticcheck.Safe,
		liveness: true,
		proofHas: "pruned by constant propagation",
	},
	{
		// The loop bound is an unknown parameter: zero trips are
		// possible, so the obligation survives with a □◇ assumption.
		name: "unknown_bound",
		src: `
int audit_log(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, eventually(audit_log(ANY(int))));
	return x;
}
int main(int n) {
	int w = do_work(n);
	int i = 0;
	while (i < n) {
		int r = audit_log(i);
		i = i + 1;
	}
	return w;
}
`,
		verdict:    staticcheck.NeedsRuntime,
		obligation: "eventually",
	},
	{
		// The discharge event is conditional inside the loop: even a
		// proved-terminating loop may never run it.
		name: "conditional_event_in_loop",
		src: `
int audit_log(int x) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, eventually(audit_log(ANY(int))));
	return x;
}
int main(int x) {
	int w = do_work(x);
	int i = 0;
	while (i < 3) {
		if (x > 0) {
			int r = audit_log(i);
		}
		i = i + 1;
	}
	return w;
}
`,
		verdict:    staticcheck.NeedsRuntime,
		obligation: "eventually",
	},
	{
		// The counter's address escapes into a call, so the ranking
		// argument (and the cell tracking) must refuse it.
		name: "escaped_counter",
		src: `
int audit_log(int x) { return 0; }
int peek(int p) { return 0; }
int do_work(int x) {
	TESLA_WITHIN(main, eventually(audit_log(ANY(int))));
	return x;
}
int main(int x) {
	int w = do_work(x);
	int i = 0;
	while (i < 3) {
		int r = audit_log(i);
		int s = peek(&i);
		i = i + 1;
	}
	return w;
}
`,
		verdict:    staticcheck.NeedsRuntime,
		obligation: "eventually",
	},
}

func TestLivenessVerdicts(t *testing.T) {
	for _, tc := range livenessPrograms {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := staticcheck.CheckSources(map[string]string{tc.name + ".c": tc.src}, "main")
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Results) != 1 {
				t.Fatalf("want 1 result, got %d", len(rep.Results))
			}
			res := rep.Results[0]
			if res.Verdict != tc.verdict {
				t.Fatalf("verdict = %v, want %v (reasons %v)", res.Verdict, tc.verdict, res.Reasons)
			}
			if res.Liveness != tc.liveness {
				t.Errorf("Liveness = %v, want %v", res.Liveness, tc.liveness)
			}
			if tc.proofHas != "" {
				found := false
				for _, p := range res.Proof {
					if strings.Contains(p, tc.proofHas) {
						found = true
					}
				}
				if !found {
					t.Errorf("no proof line contains %q; proof = %v", tc.proofHas, res.Proof)
				}
			}
			if tc.obligation == "" {
				if len(res.Obligations) != 0 {
					t.Errorf("unexpected obligations: %v", res.Obligations)
				}
				return
			}
			found := false
			for _, o := range res.Obligations {
				if o.Kind != tc.obligation {
					continue
				}
				found = true
				if o.Fairness == "" || !strings.Contains(o.Fairness, "□◇") {
					t.Errorf("obligation fairness = %q, want a □◇ assumption", o.Fairness)
				}
				if len(o.Discharge) == 0 {
					t.Errorf("obligation has no discharge events: %+v", o)
				}
				if !strings.Contains(o.Detail, o.Fairness) {
					t.Errorf("obligation detail %q does not quote its fairness %q", o.Detail, o.Fairness)
				}
			}
			if !found {
				t.Errorf("no obligation of kind %q; obligations = %+v", tc.obligation, res.Obligations)
			}
		})
	}
}

// checkWithOptions compiles sources exactly as CheckSources does but runs
// the checker under caller-supplied Options (CheckSources hardcodes the
// defaults).
func checkWithOptions(t *testing.T, sources map[string]string, opts staticcheck.Options) *staticcheck.Report {
	t.Helper()
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*csub.File
	for _, n := range names {
		f, err := csub.Parse(n, sources[n])
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	ctx, err := compiler.NewContext(files...)
	if err != nil {
		t.Fatal(err)
	}
	var mods []*ir.Module
	var manifests []*manifest.File
	for _, f := range files {
		u, err := compiler.CompileFile(f, ctx)
		if err != nil {
			t.Fatal(err)
		}
		mods = append(mods, u.Module)
		manifests = append(manifests, manifest.FromAssertions(f.Name, u.Assertions))
	}
	combined, err := manifest.Combine(manifests...)
	if err != nil {
		t.Fatal(err)
	}
	autos, err := combined.Compile()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := ir.Link("program", mods...)
	if err != nil {
		t.Fatal(err)
	}
	if opts.DefinedFns == nil {
		opts.DefinedFns = ctx.DefinedFns()
	}
	return staticcheck.Check(prog, autos, opts)
}

// TestLivenessBudget exhausts MaxConfigs on a program the default budget
// proves Safe: the budget bail must degrade to NEEDS-RUNTIME (never a
// wrong SAFE) and carry an explicit budget obligation naming the valve.
func TestLivenessBudget(t *testing.T) {
	sources := map[string]string{"budget.c": livenessPrograms[0].src}

	rep := checkWithOptions(t, sources, staticcheck.Options{Entry: "main", MaxConfigs: 1})
	if len(rep.Results) != 1 {
		t.Fatalf("want 1 result, got %d", len(rep.Results))
	}
	res := rep.Results[0]
	if res.Verdict == staticcheck.Safe {
		t.Fatalf("budget-starved check must not claim SAFE; got %v", res.Verdict)
	}
	if res.Verdict != staticcheck.NeedsRuntime {
		t.Fatalf("verdict = %v, want NEEDS-RUNTIME", res.Verdict)
	}
	found := false
	for _, o := range res.Obligations {
		if o.Kind == "budget" {
			found = true
			if !strings.Contains(o.Detail, "MaxConfigs") {
				t.Errorf("budget obligation does not name the valve: %q", o.Detail)
			}
		}
	}
	if !found {
		t.Errorf("no budget obligation; obligations = %+v", res.Obligations)
	}

	// The same program under the default budget is liveness-Safe.
	rep = checkWithOptions(t, sources, staticcheck.Options{Entry: "main"})
	if res := rep.Results[0]; res.Verdict != staticcheck.Safe || !res.Liveness {
		t.Fatalf("default budget: verdict = %v liveness = %v, want liveness-Safe", res.Verdict, res.Liveness)
	}
}

// TestNoLivenessOption pins the safety-only behaviour: with NoLiveness the
// counted-loop program stays NEEDS-RUNTIME and gains no proof lines.
func TestNoLivenessOption(t *testing.T) {
	sources := map[string]string{"noliv.c": livenessPrograms[0].src}
	rep := checkWithOptions(t, sources, staticcheck.Options{Entry: "main", NoLiveness: true})
	res := rep.Results[0]
	if res.Verdict != staticcheck.NeedsRuntime {
		t.Fatalf("NoLiveness verdict = %v, want NEEDS-RUNTIME", res.Verdict)
	}
	if res.Liveness || len(res.Proof) != 0 {
		t.Errorf("NoLiveness result carries liveness artefacts: liveness=%v proof=%v", res.Liveness, res.Proof)
	}
	// Obligations still surface — they come from the safety walk.
	if len(res.Obligations) == 0 {
		t.Errorf("NoLiveness result lost its obligations")
	}
}

// TestReportDeterminism runs the checker twice over a multi-assertion
// program and asserts the rendered text and JSON reports are
// byte-identical: every reason, proof line and obligation must be routed
// through the sorted normalisation, never map iteration order.
func TestReportDeterminism(t *testing.T) {
	sources := map[string]string{}
	sources["det.c"] = `
int audit_log(int x) { return 0; }
int notify(int x) { return 1; }
int do_work(int x) {
	TESLA_WITHIN(main, eventually(audit_log(ANY(int))));
	TESLA_WITHIN(main, eventually(notify(ANY(int))));
	return x;
}
int main(int n) {
	int w = do_work(n);
	int i = 0;
	while (i < n) {
		int r = audit_log(i);
		int s = notify(r);
		i = i + 1;
	}
	return w;
}
`
	render := func() (string, string) {
		rep, err := staticcheck.CheckSources(sources, "main")
		if err != nil {
			t.Fatal(err)
		}
		var text, js bytes.Buffer
		rep.WriteText(&text, false)
		if err := rep.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return text.String(), js.String()
	}
	t1, j1 := render()
	for i := 0; i < 10; i++ {
		t2, j2 := render()
		if t1 != t2 {
			t.Fatalf("text report differs between runs:\n--- run 1\n%s\n--- run %d\n%s", t1, i+2, t2)
		}
		if j1 != j2 {
			t.Fatalf("JSON report differs between runs:\n--- run 1\n%s\n--- run %d\n%s", j1, i+2, j2)
		}
	}
}

// TestObligationDot renders an undischarged obligation's product graph and
// checks the dashed fairness edge is present.
func TestObligationDot(t *testing.T) {
	rep, err := staticcheck.CheckSources(map[string]string{"dot.c": livenessPrograms[4].src}, "main")
	if err != nil {
		t.Fatal(err)
	}
	dot := rep.Results[0].Dot()
	if !strings.Contains(dot, "assume □◇") {
		t.Errorf("dot output lacks the fairness note:\n%s", dot)
	}
	if !strings.Contains(dot, "style=dashed") {
		t.Errorf("dot output lacks the dashed obligation edge:\n%s", dot)
	}
}
