// Package gui is a miniature GNUstep-style rendering engine: a view/cell
// hierarchy dispatched through the objc runtime, a PostScript-like graphics
// state machine, a cursor stack driven by tracking rectangles, and a run
// loop. It reproduces both §3.5.3 bugs — cursors pushed onto the cursor
// stack multiple times because mouse-entered events were not correctly
// paired with mouse-exited events, and a new back-end library unable to
// save and restore graphics states in a non-LIFO order.
package gui

import (
	"fmt"

	"tesla/internal/core"
)

// Rect is a drawing rectangle.
type Rect struct {
	X, Y, W, H int64
}

// Contains reports whether the point is inside the rectangle.
func (r Rect) Contains(x, y int64) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}

// GState is the graphics state various attributes are set into
// independently — stroke colour, transform, current location — so the
// behaviour of a single draw call depends on many previous calls (§2.3).
type GState struct {
	Color  int64
	TX, TY int64
}

// Backend renders drawing commands. Save returns a token; RestoreToken
// restores directly to a saved token — a non-LIFO operation the old back
// end supports and the new one mishandles.
type Backend interface {
	Name() string
	Save() core.Value
	Restore()
	RestoreToken(tok core.Value)
	SetColor(c int64)
	Translate(x, y int64)
	DrawRect(r Rect)
	// Checksum summarises everything drawn: two backends that rendered
	// the same picture agree.
	Checksum() int64
	Reset()
}

// oldBackend is the original, correct back end: saved states are snapshots
// addressable by token, so restores may arrive in any order.
type oldBackend struct {
	cur    GState
	stack  []GState
	chk    int64
	tokens map[core.Value]GState
	nextTk core.Value
}

// NewOldBackend creates the correct (non-LIFO-capable) back end.
func NewOldBackend() Backend {
	return &oldBackend{tokens: map[core.Value]GState{}}
}

func (b *oldBackend) Name() string { return "old" }

func (b *oldBackend) Save() core.Value {
	b.stack = append(b.stack, b.cur)
	b.nextTk++
	b.tokens[b.nextTk] = b.cur
	return b.nextTk
}

func (b *oldBackend) Restore() {
	if n := len(b.stack); n > 0 {
		b.cur = b.stack[n-1]
		b.stack = b.stack[:n-1]
	}
}

func (b *oldBackend) RestoreToken(tok core.Value) {
	if st, ok := b.tokens[tok]; ok {
		b.cur = st
		// Unwind the LIFO stack past the snapshot as well.
		if n := len(b.stack); n > 0 {
			b.stack = b.stack[:n-1]
		}
	}
}

func (b *oldBackend) SetColor(c int64)     { b.cur.Color = c }
func (b *oldBackend) Translate(x, y int64) { b.cur.TX += x; b.cur.TY += y }

func (b *oldBackend) DrawRect(r Rect) {
	b.chk = mix(b.chk, b.cur.Color, b.cur.TX+r.X, b.cur.TY+r.Y, r.W, r.H)
}

func (b *oldBackend) Checksum() int64 { return b.chk }

func (b *oldBackend) Reset() {
	*b = oldBackend{tokens: map[core.Value]GState{}}
}

// newBackend is the §3.5.3 buggy back end: its author was not aware that
// restoring graphics states in a non-LIFO order is a valid sequence of
// operations, so RestoreToken ignores the token and pops the top of a pure
// stack — leaving the wrong state current.
type newBackend struct {
	cur   GState
	stack []GState
	chk   int64
	next  core.Value
}

// NewNewBackend creates the buggy LIFO-only back end.
func NewNewBackend() Backend { return &newBackend{} }

func (b *newBackend) Name() string { return "new" }

func (b *newBackend) Save() core.Value {
	b.stack = append(b.stack, b.cur)
	b.next++
	return b.next
}

func (b *newBackend) Restore() {
	if n := len(b.stack); n > 0 {
		b.cur = b.stack[n-1]
		b.stack = b.stack[:n-1]
	}
}

func (b *newBackend) RestoreToken(core.Value) {
	// BUG: assumes LIFO; the token is ignored.
	b.Restore()
}

func (b *newBackend) SetColor(c int64)     { b.cur.Color = c }
func (b *newBackend) Translate(x, y int64) { b.cur.TX += x; b.cur.TY += y }

func (b *newBackend) DrawRect(r Rect) {
	b.chk = mix(b.chk, b.cur.Color, b.cur.TX+r.X, b.cur.TY+r.Y, r.W, r.H)
}

func (b *newBackend) Checksum() int64 { return b.chk }
func (b *newBackend) Reset()          { *b = newBackend{} }

func mix(acc int64, vals ...int64) int64 {
	for _, v := range vals {
		acc = acc*1000003 + v
	}
	return acc
}

// Cursor identifiers.
const (
	CursorArrow int64 = iota + 1
	CursorIBeam
	CursorHand
)

// CursorName renders a cursor id.
func CursorName(c int64) string {
	switch c {
	case CursorArrow:
		return "arrow"
	case CursorIBeam:
		return "ibeam"
	case CursorHand:
		return "hand"
	default:
		return fmt.Sprintf("cursor%d", c)
	}
}
