// Package toolchain drives the complete TESLA workflow of §4 — analyse,
// compile, instrument, link, run — as one pipeline. The cmd/ tools, the
// examples and the build-time benchmarks (figure 10) are all built on it,
// staged exactly as the paper's build is: per-file compilation to IR,
// per-file analysis into .tesla manifests, combination into a program
// manifest, per-file instrumentation against the combined manifest (the
// one-to-many property behind the incremental-rebuild costs of §5.1),
// post-instrumentation optimisation, then linking.
//
// Since the build-graph refactor the package is a thin compatibility shim:
// BuildProgram and BuildProgramOpts execute the content-hash-cached
// parallel graph in internal/build, while BuildSequential keeps the
// original strictly sequential pipeline as the reference implementation
// the graph is differentially tested against (outputs must be
// byte-identical).
package toolchain

import (
	"fmt"
	"io"
	"sort"

	"tesla/internal/automata"
	"tesla/internal/build"
	"tesla/internal/compiler"
	"tesla/internal/csub"
	"tesla/internal/instrument"
	"tesla/internal/ir"
	"tesla/internal/manifest"
	"tesla/internal/monitor"
	"tesla/internal/staticcheck"
	"tesla/internal/vm"
)

// Build is the result of compiling a program with (or without) TESLA.
type Build struct {
	// Files are the parsed sources in deterministic (name) order. Graph
	// builds only parse files that miss the artifact cache, so entries
	// may be nil for fully cached files.
	Files []*csub.File
	// Units are the per-file compilation results, aligned with Files.
	Units []*compiler.Unit
	// Manifest is the combined program manifest.
	Manifest *manifest.File
	// Autos are the compiled automata, in manifest order; instrumented
	// code indexes into this slice.
	Autos []*automata.Automaton
	// Program is the linked module: instrumented when the build was made
	// with Instrument, stripped otherwise.
	Program *ir.Module
	// Stats aggregates instrumentation statistics across units.
	Stats instrument.Stats
	// Report is the static checker's verdict set, when the build ran with
	// BuildOptions.Check (nil otherwise).
	Report *staticcheck.Report
	// Graph is the build graph's execution report (nil for
	// BuildSequential builds): per-node hit/miss/rebuild statuses.
	Graph *build.Result
}

// BuildOptions selects pipeline stages beyond the plain compile.
type BuildOptions struct {
	// Instrument inserts hooks, translators and monitor wiring; false
	// strips the assertion pseudo-calls (the "Default" baseline build).
	Instrument bool
	// Check runs the static model checker over the linked pre-
	// instrumentation program and stores the verdicts in Build.Report.
	Check bool
	// Elide skips hook generation for PROVABLY-SAFE automata. Requires
	// Check and Instrument. Assertions the checker could not prove keep
	// their instrumentation.
	Elide bool
	// Entry is the program entry point for the checker; "" means main.
	Entry string
	// NoLiveness restricts the checker to the safety pass (no liveness
	// refinement); mirrors staticcheck.Options.NoLiveness. Used by the
	// elision benchmark to separate the safety and liveness rungs.
	NoLiveness bool

	// Jobs bounds the build graph's worker pool; <= 0 means GOMAXPROCS.
	Jobs int
	// CacheDir enables the on-disk artifact cache, shared across builds
	// and processes. "" builds with a fresh in-memory cache.
	CacheDir string
	// Cache supplies an existing cache (e.g. to share memory artifacts
	// across builds in one process); overrides CacheDir.
	Cache *build.Cache
	// Explain, when non-nil, receives the per-node hit/miss/rebuild
	// report after the build (even a failed one).
	Explain io.Writer
}

// BuildProgram runs the full pipeline over the sources (name → text).
// With instrumented=false the assertion pseudo-calls are stripped,
// producing the "Default" baseline build.
func BuildProgram(sources map[string]string, instrumented bool) (*Build, error) {
	return BuildProgramOpts(sources, BuildOptions{Instrument: instrumented})
}

// BuildProgramOpts is BuildProgram with stage selection. It executes the
// internal/build graph; outputs are byte-identical to BuildSequential's.
func BuildProgramOpts(sources map[string]string, opts BuildOptions) (*Build, error) {
	cache := opts.Cache
	if cache == nil && opts.CacheDir != "" {
		var err error
		cache, err = build.Open(opts.CacheDir)
		if err != nil {
			return nil, err
		}
	}
	res, err := build.Run(sources, build.Options{
		Instrument: opts.Instrument,
		Check:      opts.Check,
		Elide:      opts.Elide,
		Entry:      opts.Entry,
		NoLiveness: opts.NoLiveness,
		Jobs:       opts.Jobs,
		Cache:      cache,
	})
	if res != nil && opts.Explain != nil {
		res.Explain(opts.Explain)
	}
	if err != nil {
		return nil, err
	}
	return &Build{
		Files:    res.Files,
		Units:    res.Units,
		Manifest: res.Manifest,
		Autos:    res.Autos,
		Program:  res.Program,
		Stats:    res.Stats,
		Report:   res.Report,
		Graph:    res,
	}, nil
}

// BuildSequential is the original single-threaded, cache-free pipeline,
// kept as the executable specification of what a build produces. The
// differential tests in internal/build assert that the graph's manifest,
// automata and linked program are byte-identical to this function's.
func BuildSequential(sources map[string]string, opts BuildOptions) (*Build, error) {
	b := &Build{}

	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)

	// Front-end: parse every file.
	for _, n := range names {
		f, err := csub.Parse(n, sources[n])
		if err != nil {
			return nil, err
		}
		b.Files = append(b.Files, f)
	}
	ctx, err := compiler.NewContext(b.Files...)
	if err != nil {
		return nil, err
	}

	// Per-file compilation and analysis.
	var manifests []*manifest.File
	for _, f := range b.Files {
		u, err := compiler.CompileFile(f, ctx)
		if err != nil {
			return nil, err
		}
		b.Units = append(b.Units, u)
		manifests = append(manifests, manifest.FromAssertions(f.Name, u.Assertions))
	}
	b.Manifest, err = manifest.Combine(manifests...)
	if err != nil {
		return nil, err
	}

	// Instrument (or strip) each module, then optimise and link.
	var mods []*ir.Module
	if opts.Instrument || opts.Check {
		b.Autos, err = b.Manifest.Compile()
		if err != nil {
			return nil, err
		}
	}
	defined := ctx.DefinedFns()
	if opts.Check {
		// The checker sees the raw linked program: uninstrumented, with
		// the site pseudo-calls still in place.
		raw := make([]*ir.Module, 0, len(b.Units))
		for _, u := range b.Units {
			raw = append(raw, u.Module)
		}
		prog, err := ir.Link("program", raw...)
		if err != nil {
			return nil, err
		}
		b.Report = staticcheck.Check(prog, b.Autos, staticcheck.Options{
			Entry:      opts.Entry,
			DefinedFns: defined,
			NoLiveness: opts.NoLiveness,
		})
	}
	if opts.Instrument {
		var elide map[string]bool
		if opts.Elide && b.Report != nil {
			elide = b.Report.SafeSet()
		}
		for i, u := range b.Units {
			m, stats, err := instrument.Module(u.Module, b.Autos, instrument.Options{
				DefinedFns: defined,
				Suffix:     fmt.Sprintf("__m%d", i),
				Elide:      elide,
			})
			if err != nil {
				return nil, err
			}
			b.Stats.Hooks += stats.Hooks
			b.Stats.Translators += stats.Translators
			b.Stats.Sites += stats.Sites
			b.Stats.ElidedHooks += stats.ElidedHooks
			b.Stats.ElidedSites += stats.ElidedSites
			ir.Optimize(m)
			mods = append(mods, m)
		}
	} else {
		// Uninstrumented build: no monitor will attach, so drop the autos
		// compiled for the checker (the Report keeps its own references).
		b.Autos = nil
		for _, u := range b.Units {
			m := instrument.Strip(u.Module)
			ir.Optimize(m)
			mods = append(mods, m)
		}
	}
	b.Program, err = ir.Link("program", mods...)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// Runtime bundles an executable VM with its monitor, for instrumented
// builds (Monitor and Thread are nil for uninstrumented ones).
type Runtime struct {
	VM      *vm.VM
	Monitor *monitor.Monitor
	Thread  *monitor.Thread
}

// NewRuntime prepares a VM (and, for instrumented builds, a monitor wired
// to it) for the build.
func (b *Build) NewRuntime(opts monitor.Options) (*Runtime, error) {
	machine := vm.New(b.Program)
	rt := &Runtime{VM: machine}
	if len(b.Autos) > 0 {
		if opts.Memory == nil {
			opts.Memory = machine
		}
		m, err := monitor.New(opts, b.Autos...)
		if err != nil {
			return nil, err
		}
		rt.Monitor = m
		rt.Thread = m.NewThread()
		machine.AttachThread(rt.Thread)
	}
	return rt, nil
}

// Run executes main() (or the named entry point) on a fresh runtime.
func (b *Build) Run(entry string, opts monitor.Options, args ...int64) (int64, *Runtime, error) {
	if entry == "" {
		entry = "main"
	}
	rt, err := b.NewRuntime(opts)
	if err != nil {
		return 0, nil, err
	}
	ret, err := rt.VM.Run(entry, args...)
	return ret, rt, err
}
