package staticcheck

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report rendering shared by cmd/tesla-check, the examples and the golden
// tests: one text formatter (the CLI's historical byte format, extended
// with liveness proof and obligation lines) and one JSON formatter with a
// stable field order, so editors and CI can diff verdicts across builds.

// WriteText renders one result's text block: the verdict line, then its
// reasons, liveness proof lines and obligation lines, tab-indented.
func (res *Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", res.Automaton.Name, res.Verdict)
	for _, reason := range res.Reasons {
		fmt.Fprintf(w, "\t%s\n", reason)
	}
	for _, p := range res.Proof {
		fmt.Fprintf(w, "\t%s\n", p)
	}
	for _, o := range res.Obligations {
		fmt.Fprintf(w, "\tobligation: %s\n", o.Detail)
	}
}

// Summary prints the one-line verdict tally.
func (r *Report) Summary(w io.Writer) {
	safe, failing, runtime := r.Counts()
	fmt.Fprintf(w, "%d assertions: %d provably safe, %d provably failing, %d need runtime checking\n",
		safe+failing+runtime, safe, failing, runtime)
}

// WriteText renders the report in tesla-check's text format. With quiet,
// PROVABLY-SAFE assertions are suppressed. The final summary line is
// always printed.
func (r *Report) WriteText(w io.Writer, quiet bool) {
	for _, res := range r.Results {
		if quiet && res.Verdict == Safe {
			continue
		}
		res.WriteText(w)
	}
	r.Summary(w)
}

// jsonResult and jsonReport fix the machine-readable field order; struct
// declaration order is the serialisation order, so goldens are stable.
type jsonResult struct {
	Assertion   string       `json:"assertion"`
	Verdict     string       `json:"verdict"`
	Liveness    bool         `json:"liveness,omitempty"`
	Reasons     []string     `json:"reasons,omitempty"`
	Proof       []string     `json:"proof,omitempty"`
	Obligations []Obligation `json:"obligations,omitempty"`
}

type jsonReport struct {
	Assertions   int          `json:"assertions"`
	Safe         int          `json:"safe"`
	Failing      int          `json:"failing"`
	NeedsRuntime int          `json:"needs_runtime"`
	Results      []jsonResult `json:"results"`
}

// WriteJSON renders the report as indented JSON with a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	safe, failing, runtime := r.Counts()
	out := jsonReport{
		Assertions:   safe + failing + runtime,
		Safe:         safe,
		Failing:      failing,
		NeedsRuntime: runtime,
		Results:      []jsonResult{},
	}
	for _, res := range r.Results {
		out.Results = append(out.Results, jsonResult{
			Assertion:   res.Automaton.Name,
			Verdict:     res.Verdict.String(),
			Liveness:    res.Liveness,
			Reasons:     res.Reasons,
			Proof:       res.Proof,
			Obligations: res.Obligations,
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
