package ir

import "sort"

// Control-flow and call-graph helpers for whole-program analyses. The
// static checker's liveness pass needs dominators (to find back edges),
// natural loops (to rank counters and widen at loop heads) and the direct
// call graph (to decide whether a discharging event is reachable at all).

// Succs returns the indices of the blocks b can transfer control to. A
// block whose last instruction is not a terminator has no successors
// (unreachable filler emitted by the front end).
func (f *Func) Succs(b int) []int {
	blk := f.Blocks[b]
	if len(blk.Instrs) == 0 {
		return nil
	}
	t := blk.Instrs[len(blk.Instrs)-1]
	switch t.Op {
	case OpBr:
		return []int{t.Blk1}
	case OpCondBr:
		if t.Blk1 == t.Blk2 {
			return []int{t.Blk1}
		}
		return []int{t.Blk1, t.Blk2}
	}
	return nil
}

// Preds returns, for every block, the indices of its predecessors, in
// ascending order. Unreachable blocks appear only as sources, never as
// roots of the analysis.
func (f *Func) Preds() [][]int {
	preds := make([][]int, len(f.Blocks))
	for b := range f.Blocks {
		for _, s := range f.Succs(b) {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// ReachableBlocks returns the set of blocks reachable from block 0.
func (f *Func) ReachableBlocks() []bool {
	seen := make([]bool, len(f.Blocks))
	if len(f.Blocks) == 0 {
		return seen
	}
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range f.Succs(b) {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// Dominators computes the dominator sets of every block reachable from
// block 0 with the classic iterative dataflow: dom(b) = {b} ∪ ⋂ dom(p)
// over reachable predecessors. dom[b] is nil for unreachable blocks.
// Functions here are small enough that the simple O(n²) fixpoint is fine.
func (f *Func) Dominators() []map[int]bool {
	n := len(f.Blocks)
	reach := f.ReachableBlocks()
	preds := f.Preds()
	dom := make([]map[int]bool, n)
	if n == 0 || !reach[0] {
		return dom
	}
	all := map[int]bool{}
	for b := 0; b < n; b++ {
		if reach[b] {
			all[b] = true
		}
	}
	dom[0] = map[int]bool{0: true}
	for b := 1; b < n; b++ {
		if reach[b] {
			dom[b] = copySet(all)
		}
	}
	for changed := true; changed; {
		changed = false
		for b := 1; b < n; b++ {
			if !reach[b] {
				continue
			}
			next := map[int]bool(nil)
			for _, p := range preds[b] {
				if !reach[p] {
					continue
				}
				if next == nil {
					next = copySet(dom[p])
				} else {
					for d := range next {
						if !dom[p][d] {
							delete(next, d)
						}
					}
				}
			}
			if next == nil {
				next = map[int]bool{}
			}
			next[b] = true
			if len(next) != len(dom[b]) {
				dom[b] = next
				changed = true
			}
		}
	}
	return dom
}

func copySet(s map[int]bool) map[int]bool {
	out := make(map[int]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

// NaturalLoop is the loop of one or more back edges u→Head where Head
// dominates u: Head plus every block that can reach a latch without
// passing through Head.
type NaturalLoop struct {
	// Head is the loop header (the back edges' target).
	Head int
	// Blocks are the loop's members including Head, ascending.
	Blocks []int
	// Latches are the back edges' sources, ascending.
	Latches []int
}

// Contains reports whether block b belongs to the loop.
func (l *NaturalLoop) Contains(b int) bool {
	i := sort.SearchInts(l.Blocks, b)
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// Loops finds the natural loops of f, merged per header, ordered by
// header index. Irreducible cycles (none are produced by the csub front
// end) simply yield no loop.
func (f *Func) Loops() []NaturalLoop {
	dom := f.Dominators()
	preds := f.Preds()
	latches := map[int][]int{}
	for b := range f.Blocks {
		if dom[b] == nil {
			continue
		}
		for _, s := range f.Succs(b) {
			if dom[b][s] { // s dominates b: back edge b→s
				latches[s] = append(latches[s], b)
			}
		}
	}
	heads := make([]int, 0, len(latches))
	for h := range latches {
		heads = append(heads, h)
	}
	sort.Ints(heads)

	var out []NaturalLoop
	for _, h := range heads {
		body := map[int]bool{h: true}
		var stack []int
		for _, l := range latches[h] {
			if !body[l] {
				body[l] = true
				stack = append(stack, l)
			}
		}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range preds[b] {
				if dom[p] != nil && !body[p] {
					body[p] = true
					stack = append(stack, p)
				}
			}
		}
		loop := NaturalLoop{Head: h}
		for b := range body {
			loop.Blocks = append(loop.Blocks, b)
		}
		sort.Ints(loop.Blocks)
		loop.Latches = append(loop.Latches, latches[h]...)
		sort.Ints(loop.Latches)
		out = append(out, loop)
	}
	return out
}

// Callees returns the distinct symbols f calls directly (OpCall), sorted.
// Indirect calls (OpCallPtr) have no static callee and are not included.
func (f *Func) Callees() []string {
	set := map[string]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpCall {
				set[in.Sym] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// CallGraph maps every function to its direct callees (defined or not).
func (m *Module) CallGraph() map[string][]string {
	out := make(map[string][]string, len(m.Funcs))
	for _, f := range m.Funcs {
		out[f.Name] = f.Callees()
	}
	return out
}

// Reachable returns the functions reachable from entry (inclusive)
// through direct calls into defined functions.
func (m *Module) Reachable(entry string) map[string]bool {
	cg := m.CallGraph()
	seen := map[string]bool{}
	if _, ok := cg[entry]; !ok {
		return seen
	}
	stack := []string{entry}
	seen[entry] = true
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, callee := range cg[fn] {
			if _, defined := cg[callee]; defined && !seen[callee] {
				seen[callee] = true
				stack = append(stack, callee)
			}
		}
	}
	return seen
}
