package kernel

import (
	"strings"
	"testing"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/spec"
)

func bootAll(t *testing.T, bugs BugConfig) (*Kernel, *core.CountingHandler) {
	t.Helper()
	h := core.NewCountingHandler()
	k, _, err := Boot(Release, SetAll, bugs, monitor.Options{Handler: h})
	if err != nil {
		t.Fatal(err)
	}
	return k, h
}

// TestTable1Counts pins the assertion-set sizes to table 1 of the paper.
func TestTable1Counts(t *testing.T) {
	counts := map[Set]int{
		SetMF:  25,
		SetMS:  11,
		SetMP:  10,
		SetM:   48,
		SetP:   37,
		SetAll: 96,
	}
	for set, want := range counts {
		if got := len(Assertions(set)); got != want {
			t.Errorf("%s: %d assertions, want %d", set, got, want)
		}
	}
}

func TestAllAssertionsCompile(t *testing.T) {
	autos, err := CompileAssertions(SetAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(autos) != 96 {
		t.Fatalf("compiled %d automata", len(autos))
	}
}

// TestCleanKernelNoViolations: with no bugs injected, the full workload
// passes every assertion.
func TestCleanKernelNoViolations(t *testing.T) {
	k, h := bootAll(t, BugConfig{})
	th := k.NewThread()
	ExerciseAll(th)
	OpenClose(th, 50)
	if p, err := SetupOLTP(th); err == nil {
		for i := 0; i < 20; i++ {
			OLTPTransaction(th, p)
		}
	}
	for i := 0; i < 20; i++ {
		BuildStep(th, i)
	}
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("clean kernel produced violations:\n%v", vs)
	}
}

// TestKqueueBugDetected reproduces the first §3.5.2 finding:
// mac_socket_check_poll is invoked for select and poll, but not kqueue.
func TestKqueueBugDetected(t *testing.T) {
	k, h := bootAll(t, BugConfig{KqueueMissingPollCheck: true})
	th := k.NewThread()
	p, err := SetupOLTP(th)
	if err != nil {
		t.Fatal(err)
	}

	th.Poll(p.Client)
	th.Select(p.Client)
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("poll/select flagged spuriously: %v", vs)
	}

	th.Kevent(p.Client)
	vs := h.Violations()
	if len(vs) != 1 || vs[0].Kind != core.VerdictNoInstance {
		t.Fatalf("kqueue bug not detected: %v", vs)
	}
	if !strings.Contains(vs[0].Class.Name, "sopoll_generic") {
		t.Fatalf("wrong assertion fired: %v", vs[0])
	}
}

// TestWrongCredentialBugDetected reproduces the second, subtler finding:
// one dynamic call graph passes the cached file credential instead of the
// active credential.
func TestWrongCredentialBugDetected(t *testing.T) {
	k, h := bootAll(t, BugConfig{WrongCredential: true})
	th := k.NewThread()
	p, err := SetupOLTP(th)
	if err != nil {
		t.Fatal(err)
	}

	// poll(2) uses the right credential even with the bug armed.
	th.Poll(p.Client)
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("poll flagged: %v", vs)
	}

	// The bug only bites when the active credential differs from the one
	// cached in the file at open time: change credentials, then select.
	th.Setuid(1001)
	th.Select(p.Client)
	vs := h.Violations()
	if len(vs) != 1 || vs[0].Kind != core.VerdictNoInstance {
		t.Fatalf("wrong-credential bug not detected: %v", vs)
	}
	if !strings.Contains(vs[0].Class.Name, "sopoll_generic") {
		t.Fatalf("wrong assertion: %v", vs[0])
	}

	// Sanity: without the bug, the same sequence is clean.
	k2, h2 := bootAll(t, BugConfig{})
	th2 := k2.NewThread()
	p2, _ := SetupOLTP(th2)
	th2.Setuid(1001)
	th2.Select(p2.Client)
	if vs := h2.Violations(); len(vs) != 0 {
		t.Fatalf("fixed kernel flagged: %v", vs)
	}
}

// TestMissingSUGIDDetected reproduces the eventually-style security
// property: credential changes must set P_SUGID before the syscall ends.
func TestMissingSUGIDDetected(t *testing.T) {
	k, h := bootAll(t, BugConfig{MissingSUGID: true})
	th := k.NewThread()
	th.Setuid(1001)
	vs := h.Violations()
	if len(vs) == 0 {
		t.Fatal("missing P_SUGID not detected")
	}
	found := false
	for _, v := range vs {
		if v.Kind == core.VerdictIncomplete && strings.Contains(v.Class.Name, "sugid") {
			found = true
		}
	}
	if !found {
		t.Fatalf("wrong violations: %v", vs)
	}
}

// TestCoverageReproduction: the kernel test suite leaves exactly 26 of the
// 37 P assertions unexercised — 19 procfs, 2 CPUSET, 5 POSIX real-time.
func TestCoverageReproduction(t *testing.T) {
	h := core.NewCountingHandler()
	autos, err := CompileAssertions(SetP)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := monitor.New(monitor.Options{Handler: h}, autos...)
	if err != nil {
		t.Fatal(err)
	}
	k := New(Config{Monitor: mon})
	th := k.NewThread()
	ExerciseAll(th)

	missed := Unexercised(h, autos)
	if len(missed) != 26 {
		t.Fatalf("unexercised = %d (%v), want 26", len(missed), missed)
	}
	var procfs, cpuset, rt int
	for _, name := range missed {
		switch {
		case strings.HasPrefix(name, "P:procfs"):
			procfs++
		case strings.HasPrefix(name, "P:cpuset"):
			cpuset++
		case strings.HasPrefix(name, "P:rtprio"):
			rt++
		}
	}
	if procfs != 19 || cpuset != 2 || rt != 5 {
		t.Fatalf("breakdown procfs=%d cpuset=%d rt=%d", procfs, cpuset, rt)
	}

	// Exercising the missing facilities closes the gap.
	for op := 0; op < ProcfsOps; op++ {
		th.Procfs(op, th.Proc())
	}
	th.CpusetGet(th.Proc())
	th.CpusetSet(th.Proc())
	for op := 0; op < RtprioOps; op++ {
		th.Rtprio(op, th.Proc())
	}
	if missed := Unexercised(h, autos); len(missed) != 0 {
		t.Fatalf("still unexercised after full drive: %v", missed)
	}
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("violations while closing coverage: %v", vs)
	}
}

// TestPageFaultPath: the trap_pfault bound works outside any system call.
func TestPageFaultPath(t *testing.T) {
	k, h := bootAll(t, BugConfig{})
	th := k.NewThread()
	fd := th.Open("/mapped")
	th.Close(fd)
	th.PageFault("/mapped")
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("page-fault path: %v", vs)
	}
}

// TestACLInternalPath: reading an ACL goes through extattr and vn_rdwr with
// IO_NOMACCHECK — no mac_vnode_check_read expected (fig. 7 semantics).
func TestACLInternalPath(t *testing.T) {
	k, h := bootAll(t, BugConfig{})
	th := k.NewThread()
	fd := th.Open("/file")
	th.Close(fd)
	if ret := th.AclGet("/file"); ret != 0 {
		t.Fatalf("aclget = %d", ret)
	}
	if ret := th.AclSet("/file"); ret != 0 {
		t.Fatalf("aclset = %d", ret)
	}
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("ACL internal path flagged: %v", vs)
	}
}

// TestReaddirInternalRead: ffs_read reached from ufs_readdir is exempt via
// incallstack.
func TestReaddirInternalRead(t *testing.T) {
	k, h := bootAll(t, BugConfig{})
	th := k.NewThread()
	if ret := th.Readdir("/"); ret != 0 {
		t.Fatalf("readdir = %d", ret)
	}
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("readdir internal read flagged: %v", vs)
	}
}

// TestExecAndKldloadPaths: the three open-like authorisations all satisfy
// the fig. 7 ufs_open assertion.
func TestExecAndKldloadPaths(t *testing.T) {
	k, h := bootAll(t, BugConfig{})
	th := k.NewThread()
	fd := th.Open("/bin/sh")
	th.Close(fd)
	th.Exec("/bin/sh")
	th.Kldload("/bin/sh")
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("open-like paths flagged: %v", vs)
	}
}

// TestSetuidExecSetsSUGID: executing a setuid image changes credentials and
// must also set P_SUGID.
func TestSetuidExecSetsSUGID(t *testing.T) {
	k, h := bootAll(t, BugConfig{})
	th := k.NewThread()
	fd := th.Open("/bin/su")
	th.Close(fd)
	th.Chmod("/bin/su", 0o4755)
	th.Exec("/bin/su")
	if th.Proc().Flag&P_SUGID == 0 {
		t.Fatal("P_SUGID not set after setuid exec")
	}
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("setuid exec flagged: %v", vs)
	}
}

// TestReleaseKernelFast: without a monitor, the instrumentation shims do
// nothing and no state accumulates.
func TestReleaseKernelFast(t *testing.T) {
	k := New(Config{Mode: Release})
	th := k.NewThread()
	ExerciseAll(th)
	OpenClose(th, 100)
	if k.SyscallCount == 0 {
		t.Fatal("no syscalls dispatched")
	}
	if th.MonitorThread() != nil {
		t.Fatal("release build has a monitor thread")
	}
}

// TestDebugModeChecks: WITNESS and INVARIANTS actually run in Debug mode.
func TestDebugModeChecks(t *testing.T) {
	k := New(Config{Mode: Debug})
	th := k.NewThread()
	ExerciseAll(th)

	// INVARIANTS catches credential over-release.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("INVARIANTS did not catch over-release")
			}
		}()
		c := &Ucred{refs: 0}
		th.crfree(c)
	}()

	// WITNESS catches a lock-order reversal.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("WITNESS did not catch reversal")
			}
		}()
		th.lock("a")
		th.lock("b")
		th.unlock("b")
		th.unlock("a")
		th.lock("b")
		th.lock("a") // reversal: a was held before b earlier
	}()
}

// TestSetStrings covers the Set stringer.
func TestSetStrings(t *testing.T) {
	for set, want := range map[Set]string{
		SetMF: "MF", SetMS: "MS", SetMP: "MP",
		SetM: "M", SetP: "P", SetAll: "All", Set(0): "none",
	} {
		if got := set.String(); got != want {
			t.Errorf("%d: %q != %q", set, got, want)
		}
	}
}

// TestSyscallErrors: descriptor misuse returns errors, no panics, and no
// assertion noise.
func TestSyscallErrors(t *testing.T) {
	k, h := bootAll(t, BugConfig{})
	th := k.NewThread()
	if ret := th.Close(99); ret != -EBADF {
		t.Errorf("close(99) = %d", ret)
	}
	if ret := th.Read(5, 10); ret != -EBADF {
		t.Errorf("read(5) = %d", ret)
	}
	if ret := th.Readdir("/nope"); ret != -ENOENT {
		t.Errorf("readdir(/nope) = %d", ret)
	}
	if ret := th.Procfs(99, th.Proc()); ret != -EINVAL {
		t.Errorf("procfs(99) = %d", ret)
	}
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("error paths flagged: %v", vs)
	}
}

// TestMACPolicyDenial: a low-integrity subject is denied and no assertion
// fires for the denied operation.
func TestMACPolicyDenial(t *testing.T) {
	k, h := bootAll(t, BugConfig{})
	th := k.NewThread()
	fd := th.Open("/secret")
	th.Close(fd)
	// Raise the object's label above the subject's.
	vp := k.fs.nodes["/secret"]
	vp.Label = 99
	if ret := th.Open("/secret"); ret != -EACCES {
		t.Fatalf("open should be denied: %d", ret)
	}
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("denied open flagged: %v", vs)
	}
}

// TestEveryAssertionExercisable: driving every kernel facility (including
// the deprecated ones) fires the site of all 96 assertions — guarding
// against site-name mismatches between the corpus and the kernel code.
func TestEveryAssertionExercisable(t *testing.T) {
	h := core.NewCountingHandler()
	autos, err := CompileAssertions(SetAll)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := monitor.New(monitor.Options{Handler: h}, autos...)
	if err != nil {
		t.Fatal(err)
	}
	k := New(Config{Monitor: mon})
	th := k.NewThread()
	ExerciseAll(th)
	for op := 0; op < ProcfsOps; op++ {
		th.Procfs(op, th.Proc())
	}
	th.CpusetGet(th.Proc())
	th.CpusetSet(th.Proc())
	for op := 0; op < RtprioOps; op++ {
		th.Rtprio(op, th.Proc())
	}

	missed := Unexercised(h, autos)
	// The Infrastructure test assertions intentionally reference events
	// that never fire; everything else must have been exercised.
	var unexpected []string
	for _, name := range missed {
		if !strings.HasPrefix(name, "Infra:") {
			unexpected = append(unexpected, name)
		}
	}
	if len(unexpected) != 0 {
		t.Fatalf("assertions with unreachable sites: %v", unexpected)
	}
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("full drive produced violations: %v", vs)
	}
}

// TestGlobalAssertionAcrossKernelThreads: a cross-thread security property
// in the global context — one thread performs the authorisation, another
// reaches the site within the same global bound.
func TestGlobalAssertionAcrossKernelThreads(t *testing.T) {
	a := spec.Assert("global-audit", spec.Global,
		spec.Bound{
			Begin: spec.StaticEvent{Kind: spec.StaticCall, Fn: "audit_begin"},
			End:   spec.StaticEvent{Kind: spec.StaticReturn, Fn: "audit_commit"},
		},
		spec.Previously(spec.Call("mac_socket_check_poll", spec.AnyPtr(), spec.Var("so")).ReturnsInt(0)))
	auto, err := automata.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	h := core.NewCountingHandler()
	mon, err := monitor.New(monitor.Options{Handler: h}, auto)
	if err != nil {
		t.Fatal(err)
	}
	k := New(Config{Monitor: mon})
	t1 := k.NewThread()
	t2 := k.NewThread()
	pair, err := SetupOLTP(t1)
	if err != nil {
		t.Fatal(err)
	}
	so := t1.fd(pair.Client).Socket

	// Thread 2 opens the audit window; thread 1 polls (performing the MAC
	// check); thread 2 reaches the site and commits.
	t2.MonitorThread().Call("audit_begin")
	t1.Poll(pair.Client)
	t2.MonitorThread().Site("global-audit", so.ID)
	t2.MonitorThread().Return("audit_commit", 0)
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("cross-thread property failed: %v", vs)
	}

	// Without the poll, the site has no instance to match.
	t2.MonitorThread().Call("audit_begin")
	t2.MonitorThread().Site("global-audit", so.ID)
	t2.MonitorThread().Return("audit_commit", 0)
	if vs := h.Violations(); len(vs) != 1 {
		t.Fatalf("missing cross-thread check not detected: %v", vs)
	}
}
