// Command trace demonstrates the offline debugging pipeline: record a
// violating run into an event trace, replay the trace through fresh
// automata to reproduce the verdict without re-running the program, then
// delta-debug the trace down to a minimal counterexample and report it.
//
//	go run ./examples/trace
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"

	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/toolchain"
	"tesla/internal/trace"
)

// fixtureArg is the input the doomed fixture runs with; any value works
// (the violation is input-independent), it just keys the instances.
const fixtureArg = 42

func main() {
	dir := "examples/trace/testdata"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	if err := demo(os.Stdout, dir); err != nil {
		fmt.Fprintln(os.Stderr, "trace demo:", err)
		os.Exit(1)
	}
}

// demo runs the whole pipeline against dir/doomed.c and writes the
// narrated result to w. The output is deterministic (single VM thread,
// VM-step clock), which is what makes the golden-file test possible.
func demo(w io.Writer, dir string) error {
	src, err := os.ReadFile(filepath.Join(dir, "doomed.c"))
	if err != nil {
		return err
	}
	build, err := toolchain.BuildProgram(map[string]string{"doomed.c": string(src)}, true)
	if err != nil {
		return err
	}

	// 1. Record: run the program live with the recorder tapped into both
	// layers — program events via the monitor tap, lifecycle events via
	// the store handler.
	live := core.NewCountingHandler()
	rec := trace.NewRecorder(build.Autos, 0)
	ret, _, err := build.Run("main", monitor.Options{
		Handler: core.MultiHandler{live, rec},
		Tap:     rec,
	}, fixtureArg)
	if err != nil {
		return err
	}
	tr := rec.Snapshot()
	fmt.Fprintf(w, "recorded: main(%d) = %d, %d event(s) (%d program), %d live violation(s)\n",
		fixtureArg, ret, len(tr.Events), len(tr.Programs()), len(live.Violations()))

	// 2. Replay: feed the saved trace back through fresh automata. No VM,
	// no program — same verdicts.
	res, err := trace.Replay(tr, build.Autos)
	if err != nil {
		return err
	}
	liveSigs := make([]string, len(live.Violations()))
	for i, v := range live.Violations() {
		liveSigs[i] = v.Signature()
	}
	if !reflect.DeepEqual(res.Signatures(), liveSigs) {
		return fmt.Errorf("replay diverged: live %v, replay %v", liveSigs, res.Signatures())
	}
	fmt.Fprintf(w, "replayed: verdicts reproduced offline: %v\n", res.Signatures())

	// 3. Shrink: ddmin the program events down to a 1-minimal subsequence
	// that still triggers the same violation.
	shrunk, err := trace.Shrink(tr, build.Autos)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "shrunk:   kept %d of %d program event(s) (removed %d) for target %s\n",
		shrunk.Kept, shrunk.Kept+shrunk.Removed, shrunk.Removed, shrunk.Target)

	// 4. Report: render the minimal counterexample.
	fmt.Fprintf(w, "\n")
	return trace.Report(w, shrunk.Trace, build.Autos)
}
