package agg

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tesla/internal/core"
	"tesla/internal/trace"
)

// Client is the producer side of the wire protocol: it streams delta
// traces to a tesla-agg server without ever blocking the monitored
// program. Sends enqueue pre-encoded frames into a bounded buffer
// drained by one writer goroutine; a broken connection is retried with
// backoff while the buffer absorbs the outage, and when the buffer
// overflows or retries exhaust, frames are dropped and counted — the
// monitored process degrades explicitly (exit 3 via Degraded), it never
// stalls and never lies.
//
// Proto v2 makes delivery exactly-once. Every trace frame carries a
// monotonic sequence number; sent frames are retained until the server
// acks them and are resent after a reconnect (the server deduplicates by
// sequence, so the resend of a frame whose write "failed" after actually
// reaching the wire — the classic double-count — is ingested once). The
// bye is only written after the unacked set has been resent on the same
// connection, so a bye's arrival implies every counted-sent frame
// arrived: ingested + dropped == sent holds exactly for clean producers,
// across arbitrary crash/reconnect interleavings.
//
// With ClientOpts.Spool set, every trace frame is write-ahead-logged to
// disk before it is queued, and frames the bounded buffer cannot hold
// overflow to the spool instead of being dropped (the writer reads them
// back in order once the queue drains). A producer crash then loses
// nothing durable: `tesla-agg resend` replays the spool and closes the
// accounting the crash left open.
type Client struct {
	opts ClientOpts
	addr string

	mu   sync.Mutex
	cond *sync.Cond
	// queue holds unsent frames, in order. unacked holds sequenced
	// frames that were written to some connection but not yet covered by
	// an ack watermark; a reconnect resends them before anything newer.
	queue   []wireFrame
	unacked []wireFrame
	nextSeq uint64 // last sequence assigned
	acked   uint64 // highest server-acked sequence
	// loadedSeq is the highest sequence handed toward the wire (queued
	// in memory or reloaded from the spool); spoolBehind marks that
	// frames beyond it live only in the spool and the writer must read
	// them back before sending anything newer.
	loadedSeq   uint64
	spoolBehind bool
	closed      bool

	done chan struct{}

	sentFrames    atomic.Uint64
	sentEvents    atomic.Uint64
	droppedFrames atomic.Uint64
	droppedEvents atomic.Uint64
	ringDropped   atomic.Uint64
	reconnects    atomic.Uint64
	spoolFaults   atomic.Uint64
	byeSent       atomic.Bool
}

// ClientOpts configures a Client.
type ClientOpts struct {
	// Tool and Process identify the producer in the hello frame. With a
	// spool, Process must be stable across restarts (it keys server-side
	// dedup); tesla-run's host:pid default is not — pass an explicit one.
	Tool    string
	Process string
	// Buffer bounds the frames pending in memory while the connection is
	// down or slow (default 256).
	Buffer int
	// Retries bounds reconnection attempts per frame (default 4).
	Retries int
	// Backoff is the base reconnect delay, doubled per attempt
	// (default 50ms).
	Backoff time.Duration
	// Spool, when set, is the client's offline write-ahead spool. It
	// must be empty at Dial (a leftover spool belongs to a crashed run:
	// replay it with tesla-agg resend, don't mix two runs' events). The
	// client takes ownership and closes it on Close.
	Spool *trace.Spool

	// wrapConn is a test seam: when set, every dialed connection is
	// wrapped before use, so tests can inject byte-level connection
	// faults (e.g. a write that reaches the wire and then reports an
	// error — the double-count regression).
	wrapConn func(net.Conn) net.Conn
}

// ClientStats is a client's self-accounting; Bye ships it to the server.
type ClientStats struct {
	SentFrames    uint64
	SentEvents    uint64
	DroppedFrames uint64
	DroppedEvents uint64
	RingDropped   uint64
	Reconnects    uint64
	// SpoolFaults counts frames whose write-ahead append failed; they
	// were still sent from memory, but a crash before delivery would
	// lose them (reduced durability, not reduced delivery).
	SpoolFaults uint64
}

// Degraded reports whether the client lost anything: a producer whose
// run was otherwise clean must exit 3 when this is set.
func (s ClientStats) Degraded() bool { return s.DroppedFrames|s.DroppedEvents != 0 }

type wireFrame struct {
	kind    byte
	payload []byte
	events  uint64
	seq     uint64 // 0 for unsequenced (health) frames
}

// Dial connects to a tesla-agg server and completes the handshake
// synchronously, so version rejections surface immediately as errors
// naming both sides. The returned client owns the connection (and the
// spool, when one is configured).
func Dial(addr string, opts ClientOpts) (*Client, error) {
	if opts.Buffer <= 0 {
		opts.Buffer = 256
	}
	if opts.Retries <= 0 {
		opts.Retries = 4
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 50 * time.Millisecond
	}
	if opts.Spool != nil && opts.Spool.FrameCount() > 0 {
		return nil, fmt.Errorf("agg: spool %s is not empty — it belongs to an earlier run; deliver it with `tesla-agg resend` before reusing the directory", opts.Spool.Dir())
	}
	c := &Client{opts: opts, addr: addr, done: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	conn, ack, err := dialHandshake(addr, Hello{
		Proto: ProtoVersion, Codec: trace.Version,
		Tool: opts.Tool, Process: opts.Process,
	}, opts.wrapConn)
	if err != nil {
		return nil, err
	}
	c.noteAck(ack.Ack)
	go c.writer(conn)
	return c, nil
}

// dialHandshake dials addr, sends the magic and hello, and waits for the
// ack. Shared by the client, the query CLI path and ResumeSpool.
func dialHandshake(addr string, hello Hello, wrap func(net.Conn) net.Conn) (net.Conn, HelloAck, error) {
	network, address := SplitAddr(addr)
	conn, err := net.Dial(network, address)
	if err != nil {
		return nil, HelloAck{}, err
	}
	if wrap != nil {
		conn = wrap(conn)
	}
	helloJSON, _ := json.Marshal(hello)
	fw := trace.NewFrameWriter(conn)
	if _, err := conn.Write([]byte(Magic)); err != nil {
		conn.Close()
		return nil, HelloAck{}, err
	}
	if err := fw.Frame(FrameHello, helloJSON); err != nil {
		conn.Close()
		return nil, HelloAck{}, err
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	kind, payload, err := trace.NewFrameReader(conn).Next()
	if err != nil || kind != FrameHelloAck {
		conn.Close()
		return nil, HelloAck{}, fmt.Errorf("agg: no hello ack from %s: %v", addr, err)
	}
	var ack HelloAck
	if err := json.Unmarshal(payload, &ack); err != nil {
		conn.Close()
		return nil, HelloAck{}, fmt.Errorf("agg: bad hello ack from %s: %w", addr, err)
	}
	if !ack.OK {
		conn.Close()
		return nil, HelloAck{}, fmt.Errorf("agg: %s rejected the connection: %s", addr, ack.Message)
	}
	conn.SetReadDeadline(time.Time{})
	return conn, ack, nil
}

// SendTrace encodes tr as one sequenced trace frame, write-ahead-logs it
// when a spool is configured, and enqueues it. It never blocks: a full
// buffer overflows to the spool (when present) or drops the frame,
// counted.
func (c *Client) SendTrace(tr *trace.Trace) error {
	var body bytes.Buffer
	var prefix [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(prefix[:], uint64(len(tr.Events)))
	body.Write(prefix[:n])
	if err := trace.Write(&body, tr); err != nil {
		return err
	}
	events := uint64(len(tr.Events))
	c.ringDropped.Add(tr.Dropped)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.droppedFrames.Add(1)
		c.droppedEvents.Add(events)
		return nil
	}
	c.nextSeq++
	seq := c.nextSeq
	payload := EncodeSeqTrace(seq, body.Bytes())
	spooled := false
	if c.opts.Spool != nil {
		if err := c.opts.Spool.Append(payload); err != nil {
			c.spoolFaults.Add(1)
		} else {
			spooled = true
		}
	}
	switch {
	case !c.spoolBehind && len(c.queue) < c.opts.Buffer:
		c.queue = append(c.queue, wireFrame{kind: FrameSeqTrace, payload: payload, events: events, seq: seq})
		c.loadedSeq = seq
		c.cond.Signal()
	case spooled:
		// Overflow to disk: the writer reads it back, in order, once the
		// memory queue drains. Memory stays bounded; nothing is lost.
		c.spoolBehind = true
		c.cond.Signal()
	default:
		c.droppedFrames.Add(1)
		c.droppedEvents.Add(events)
	}
	c.mu.Unlock()
	return nil
}

// SendHealth enqueues the producer's merged health counters. Health is
// cumulative latest-wins state, so it is not sequenced or spooled; a
// dropped health frame is counted and superseded by the next one.
func (c *Client) SendHealth(hs []core.ClassHealth) error {
	payload, err := json.Marshal(HealthRows(hs))
	if err != nil {
		return err
	}
	c.mu.Lock()
	if c.closed || len(c.queue) >= c.opts.Buffer {
		c.mu.Unlock()
		c.droppedFrames.Add(1)
		return nil
	}
	c.queue = append(c.queue, wireFrame{kind: FrameHealth, payload: payload})
	c.cond.Signal()
	c.mu.Unlock()
	return nil
}

// Stats returns the client's accounting so far.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		SentFrames:    c.sentFrames.Load(),
		SentEvents:    c.sentEvents.Load(),
		DroppedFrames: c.droppedFrames.Load(),
		DroppedEvents: c.droppedEvents.Load(),
		RingDropped:   c.ringDropped.Load(),
		Reconnects:    c.reconnects.Load(),
		SpoolFaults:   c.spoolFaults.Load(),
	}
}

// Close drains the buffer (and any spool overflow), resends whatever the
// server has not acked, sends the bye accounting, closes the connection
// and the spool. It returns an error when the bye could not be delivered
// — the server will see the close as a mid-stream disconnect, and a
// configured spool then still holds every sent frame for `tesla-agg
// resend` to close the accounting later.
//
// Close is idempotent and safe to call concurrently: every caller waits
// for the writer to finish and observes the same result.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	<-c.done
	if c.opts.Spool != nil {
		c.opts.Spool.Close()
	}
	if !c.byeSent.Load() {
		return fmt.Errorf("agg: connection lost before final accounting was delivered")
	}
	return nil
}

// noteAck advances the acked watermark and prunes the unacked set.
func (c *Client) noteAck(seq uint64) {
	if seq == 0 {
		return
	}
	c.mu.Lock()
	if seq > c.acked {
		c.acked = seq
		keep := c.unacked[:0]
		for _, f := range c.unacked {
			if f.seq > seq {
				keep = append(keep, f)
			}
		}
		c.unacked = keep
	}
	c.mu.Unlock()
}

// ackReader drains server frames (acks) from one connection until it
// dies. Every live connection must have one: beyond advancing the
// watermark, it keeps the server's ack writes from filling the socket
// and wedging the server worker.
func (c *Client) ackReader(conn net.Conn) {
	fr := trace.NewFrameReader(conn)
	for {
		kind, payload, err := fr.Next()
		if err != nil {
			return
		}
		if kind != FrameAck {
			continue
		}
		var a Ack
		if err := json.Unmarshal(payload, &a); err == nil {
			c.noteAck(a.Seq)
		}
	}
}

// nextFrame blocks until a frame is ready (reloading spool overflow once
// the memory queue drains) or the client is closed and fully drained.
func (c *Client) nextFrame() (wireFrame, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if len(c.queue) > 0 {
			f := c.queue[0]
			c.queue = c.queue[1:]
			return f, true
		}
		if c.spoolBehind {
			c.reloadLocked()
			if len(c.queue) > 0 {
				continue
			}
			// Nothing in the spool beyond loadedSeq: caught up.
			c.spoolBehind = false
			continue
		}
		if c.closed {
			return wireFrame{}, false
		}
		c.cond.Wait()
	}
}

// reloadLocked refills the memory queue from the spool with frames
// beyond loadedSeq, up to Buffer. Called with c.mu held; the spool lock
// nests inside c.mu everywhere (Append in SendTrace, Range here).
func (c *Client) reloadLocked() {
	after := c.loadedSeq
	loaded := 0
	c.opts.Spool.Range(func(payload []byte) error {
		if loaded >= c.opts.Buffer {
			return errStopRange
		}
		seq, events, _, err := SeqTraceInfo(payload)
		if err != nil || seq <= after {
			return nil
		}
		c.queue = append(c.queue, wireFrame{
			kind:    FrameSeqTrace,
			payload: append([]byte(nil), payload...),
			events:  events,
			seq:     seq,
		})
		c.loadedSeq = seq
		loaded++
		return nil
	})
}

var errStopRange = fmt.Errorf("agg: stop spool range")

// connState is the writer's connection bundle. readerDone closes when
// the connection's ack reader exits — which, after a bye, means the
// server read our close-side frames and shut its end down.
type connState struct {
	conn       net.Conn
	fw         *trace.FrameWriter
	readerDone chan struct{}
}

func (st *connState) fail() {
	if st.conn != nil {
		st.conn.Close()
		st.conn = nil
	}
}

// sendFrame writes one frame, reconnecting with exponential backoff and
// resending the unacked set first after every reconnect (the server
// deduplicates, so resending a frame that did arrive is harmless — and
// NOT resending a frame whose write error masked a successful delivery
// was the double-count bug). Returns false when retries exhaust.
func (c *Client) sendFrame(st *connState, f wireFrame) bool {
	for attempt := 0; ; attempt++ {
		if st.conn == nil {
			if attempt >= c.opts.Retries {
				return false
			}
			time.Sleep(c.opts.Backoff << attempt)
			conn, ack, err := dialHandshake(c.addr, Hello{
				Proto: ProtoVersion, Codec: trace.Version,
				Tool: c.opts.Tool, Process: c.opts.Process,
			}, c.opts.wrapConn)
			if err != nil {
				continue
			}
			c.reconnects.Add(1)
			st.conn, st.fw = conn, trace.NewFrameWriter(conn)
			c.noteAck(ack.Ack)
			c.startAckReader(st, conn)
			if !c.resendUnacked(st) {
				continue
			}
		}
		if err := st.fw.Frame(f.kind, f.payload); err == nil {
			return true
		}
		st.fail()
	}
}

// resendUnacked replays every sent-but-unacked frame on a fresh
// connection, oldest first, before anything newer is written.
func (c *Client) resendUnacked(st *connState) bool {
	c.mu.Lock()
	pending := make([]wireFrame, 0, len(c.unacked))
	for _, f := range c.unacked {
		if f.seq > c.acked {
			pending = append(pending, f)
		}
	}
	c.mu.Unlock()
	for _, f := range pending {
		if err := st.fw.Frame(f.kind, f.payload); err != nil {
			st.fail()
			return false
		}
	}
	return true
}

// retainUnacked records a successfully written sequenced frame for
// resend-until-acked.
func (c *Client) retainUnacked(f wireFrame) {
	if f.seq == 0 {
		return
	}
	c.mu.Lock()
	if f.seq > c.acked {
		c.unacked = append(c.unacked, f)
	}
	c.mu.Unlock()
}

// startAckReader runs an ack reader for a fresh connection and wires its
// exit into the connState.
func (c *Client) startAckReader(st *connState, conn net.Conn) {
	done := make(chan struct{})
	st.readerDone = done
	go func() {
		defer close(done)
		c.ackReader(conn)
	}()
}

// writer owns the connection: it drains the frame queue, reconnecting
// with backoff on failures, and finishes with the bye frame.
func (c *Client) writer(conn net.Conn) {
	defer close(c.done)
	st := &connState{conn: conn, fw: trace.NewFrameWriter(conn)}
	defer st.fail()
	c.startAckReader(st, conn)

	for {
		f, ok := c.nextFrame()
		if !ok {
			break
		}
		if c.sendFrame(st, f) {
			c.sentFrames.Add(1)
			c.sentEvents.Add(f.events)
			c.retainUnacked(f)
		} else {
			c.droppedFrames.Add(1)
			c.droppedEvents.Add(f.events)
		}
	}
	// Final accounting. Sent/dropped are complete here: the queue and
	// spool backlog are drained and only this goroutine updates the sent
	// side. sendFrame resends the unacked set after any reconnect, so a
	// delivered bye certifies every counted-sent frame arrived (in-order
	// delivery), closing the invariant for clean producers.
	stats := c.Stats()
	payload, _ := json.Marshal(Bye{
		SentFrames:          stats.SentFrames,
		SentEvents:          stats.SentEvents,
		ClientDroppedFrames: stats.DroppedFrames,
		ClientDroppedEvents: stats.DroppedEvents,
		RingDropped:         stats.RingDropped,
	})
	if c.sendFrame(st, wireFrame{kind: FrameBye, payload: payload}) {
		c.byeSent.Store(true)
		// Linger until the server closes its end (our ack reader sees
		// EOF): it may still be draining its apply queue, and closing
		// now would RST away the bye — and acks in flight — before the
		// server reads them. The server closes promptly after the bye.
		if st.readerDone != nil {
			select {
			case <-st.readerDone:
			case <-time.After(10 * time.Second):
			}
		}
	}
}
