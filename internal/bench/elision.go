package bench

import (
	"fmt"
	"io"

	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/toolchain"
)

// ElisionCodebase is the figure 10 codebase with three more assertions in
// the clients, one per elision rung:
//
//   - an audit-trail `previously` obligation whose event runs
//     unconditionally before the site — the safety pass alone proves it
//     PROVABLY-SAFE;
//   - an `eventually` obligation discharged only by a counted flush loop —
//     NEEDS-RUNTIME for the safety pass, PROVABLY-SAFE once the liveness
//     refinement proves the loop terminates and the audit call runs;
//   - the original EVP_VerifyFinal assertion with a constant return
//     pattern, which stays NEEDS-RUNTIME on every rung.
//
// Together they show elision removing exactly the provable part of the
// instrumentation, rung by rung.
func ElisionCodebase(files, fnsPerFile int) map[string]string {
	sources := OpenSSLCodebase(files, fnsPerFile)
	sources["audit.c"] = `
int audit_log(int event) {
	return event - event;
}
`
	sources["client.c"] = `
int fetch_document(int sig) {
	int ok = EVP_VerifyFinal(1, sig, 64, 2);
	int body = ssl_f_0_0(sig, ok);
	TESLA_WITHIN(main, previously(
		EVP_VerifyFinal(ANY(ptr), ANY(ptr), ANY(int), ANY(ptr)) == 1));
	TESLA_WITHIN(main, previously(audit_log(ANY(int))));
	return body;
}
int main(int sig) {
	int logged = audit_log(sig);
	int body = fetch_document(sig);
	int flushed = flush_log(4);
	return body;
}
`
	sources["flush.c"] = `
int flush_log(int n) {
	TESLA_WITHIN(main, eventually(audit_log(ANY(int))));
	int i = 0;
	while (i < n) {
		int r = audit_log(i);
		i = i + 1;
	}
	return i;
}
`
	return sources
}

// ElisionStats compares the instrumented program across the elision rungs:
// no elision, safety-only elision, and elision with the liveness
// refinement.
type ElisionStats struct {
	// SafeAssertions / RuntimeAssertions partition the verdicts with the
	// liveness pass on; SafetySafe is how many the safety pass alone
	// proves, so SafeAssertions-SafetySafe is the liveness rung's gain.
	SafeAssertions, SafetySafe, RuntimeAssertions int
	// FullHooks / SafetyHooks / LivenessHooks are the hook counts of the
	// three builds; LivenessAway is how many hooks the liveness build
	// removed in total.
	FullHooks, SafetyHooks, LivenessHooks, LivenessAway int
	// FullInstrs / SafetyInstrs / LivenessInstrs count static IR
	// instructions in the three linked programs.
	FullInstrs, SafetyInstrs, LivenessInstrs int
	// FullSteps / SafetySteps / LivenessSteps are dynamic vm instruction
	// counts for one representative run of each build.
	FullSteps, SafetySteps, LivenessSteps int64
}

func countInstrs(b *toolchain.Build) int {
	n := 0
	for _, f := range b.Program.Funcs {
		for _, blk := range f.Blocks {
			n += len(blk.Instrs)
		}
	}
	return n
}

// ElisionMeasure builds the codebase three times — full instrumentation,
// safety-only elision, elision with liveness — and runs each program once.
func ElisionMeasure(sources map[string]string) (ElisionStats, error) {
	var es ElisionStats

	full, err := toolchain.BuildProgramOpts(sources, toolchain.BuildOptions{
		Instrument: true, Check: true,
	})
	if err != nil {
		return es, err
	}
	safety, err := toolchain.BuildProgramOpts(sources, toolchain.BuildOptions{
		Instrument: true, Check: true, Elide: true, NoLiveness: true,
	})
	if err != nil {
		return es, err
	}
	liveness, err := toolchain.BuildProgramOpts(sources, toolchain.BuildOptions{
		Instrument: true, Check: true, Elide: true,
	})
	if err != nil {
		return es, err
	}

	safe, _, runtime := liveness.Report.Counts()
	es.SafeAssertions, es.RuntimeAssertions = safe, runtime
	es.SafetySafe, _, _ = safety.Report.Counts()
	es.FullHooks = full.Stats.Hooks
	es.SafetyHooks = safety.Stats.Hooks
	es.LivenessHooks = liveness.Stats.Hooks
	es.LivenessAway = liveness.Stats.ElidedHooks
	es.FullInstrs = countInstrs(full)
	es.SafetyInstrs = countInstrs(safety)
	es.LivenessInstrs = countInstrs(liveness)

	const arg = 3 // sig % 7 == 3: the verification succeeds
	run := func(b *toolchain.Build) (int64, error) {
		_, rt, err := b.Run("main", monitor.Options{Handler: core.NopHandler{}}, arg)
		if err != nil {
			return 0, err
		}
		return rt.VM.Steps(), nil
	}
	if es.FullSteps, err = run(full); err != nil {
		return es, err
	}
	if es.SafetySteps, err = run(safety); err != nil {
		return es, err
	}
	if es.LivenessSteps, err = run(liveness); err != nil {
		return es, err
	}
	return es, nil
}

// Elision prints the static-checker elision table over the synthetic
// codebase (the compile-time complement to the figure 9/10 overheads),
// with one rung per checker capability: safety-only elision and elision
// with the liveness refinement.
func Elision(w io.Writer, files, fnsPerFile int) error {
	es, err := ElisionMeasure(ElisionCodebase(files, fnsPerFile))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "static checker elision (%d files, %d fns/file): %d assertions provably safe (%d safety, %d liveness), %d need runtime\n",
		files, fnsPerFile, es.SafeAssertions, es.SafetySafe, es.SafeAssertions-es.SafetySafe, es.RuntimeAssertions)
	Table(w, "instrumented hooks", []Row{
		{Label: "full", Value: float64(es.FullHooks), Unit: "hooks"},
		{Label: "elide (safety)", Value: float64(es.SafetyHooks), Unit: "hooks"},
		{Label: "elide (+liveness)", Value: float64(es.LivenessHooks), Unit: "hooks"},
	}, "full")
	Table(w, "static instructions", []Row{
		{Label: "full", Value: float64(es.FullInstrs), Unit: "instrs"},
		{Label: "elide (safety)", Value: float64(es.SafetyInstrs), Unit: "instrs"},
		{Label: "elide (+liveness)", Value: float64(es.LivenessInstrs), Unit: "instrs"},
	}, "full")
	Table(w, "dynamic instructions (one run)", []Row{
		{Label: "full", Value: float64(es.FullSteps), Unit: "steps"},
		{Label: "elide (safety)", Value: float64(es.SafetySteps), Unit: "steps"},
		{Label: "elide (+liveness)", Value: float64(es.LivenessSteps), Unit: "steps"},
	}, "full")
	return nil
}
