package build

import (
	"fmt"
	"io"
)

// Counts tallies node outcomes across the build (parse records count as
// built work: a parse only happens when some consumer missed the cache).
type Counts struct {
	Built    int
	MemHits  int
	DiskHits int
	Skipped  int
	Failed   int
}

// Counts summarises the node reports.
func (r *Result) Counts() Counts {
	var c Counts
	for _, n := range r.Nodes {
		switch n.Status {
		case StatusBuilt:
			c.Built++
		case StatusMemHit:
			c.MemHits++
		case StatusDiskHit:
			c.DiskHits++
		case StatusSkipped:
			c.Skipped++
		case StatusFailed:
			c.Failed++
		}
	}
	return c
}

// AllCached reports whether the build did no stage work at all — every
// node was served from the memory or disk cache.
func (r *Result) AllCached() bool {
	c := r.Counts()
	return c.Built == 0 && c.Failed == 0 && c.Skipped == 0
}

// Summary is the one-line cache report, greppable by CI gates:
//
//	graph: 14 nodes  built=2 mem=0 disk=12 skipped=0
func (r *Result) Summary() string {
	c := r.Counts()
	return fmt.Sprintf("graph: %d nodes  built=%d mem=%d disk=%d skipped=%d",
		len(r.Nodes), c.Built, c.MemHits, c.DiskHits, c.Skipped)
}

// Explain writes the per-node hit/miss/rebuild report followed by the
// summary line — the -explain output of tesla-build and tesla-run.
func (r *Result) Explain(w io.Writer) {
	for _, n := range r.Nodes {
		key := n.Key
		if len(key) > 12 {
			key = key[:12]
		}
		switch {
		case n.Err != nil && n.Status == StatusFailed:
			fmt.Fprintf(w, "%-28s %-11s %s\n", n.ID, n.Status, n.Err)
		case key != "":
			fmt.Fprintf(w, "%-28s %-11s %s\n", n.ID, n.Status, key)
		default:
			fmt.Fprintf(w, "%-28s %s\n", n.ID, n.Status)
		}
	}
	fmt.Fprintln(w, r.Summary())
}
