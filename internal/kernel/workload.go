package kernel

import (
	"fmt"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/monitor"
)

// Boot builds a kernel in the given configuration, compiling the selected
// assertion sets and wiring a TESLA monitor when any are enabled. This is
// the benchmark entry point for the §5.2 kernel configurations: Release,
// Debug, Infrastructure (sets == SetInfra), and the table-1 assertion sets.
func Boot(mode Mode, sets Set, bugs BugConfig, opts monitor.Options) (*Kernel, *monitor.Monitor, error) {
	cfg := Config{Mode: mode, Bugs: bugs}
	var mon *monitor.Monitor
	if sets != 0 {
		autos, err := CompileAssertions(sets)
		if err != nil {
			return nil, nil, err
		}
		mon, err = monitor.New(opts, autos...)
		if err != nil {
			return nil, nil, err
		}
		cfg.Monitor = mon
	}
	return New(cfg), mon, nil
}

// OpenClose is the lmbench-style open/close microbenchmark of figure 11a:
// a tight loop of open and close system calls.
func OpenClose(t *Thread, iters int) {
	for i := 0; i < iters; i++ {
		fd := t.Open("/tmp/lat_fs")
		if fd >= 0 {
			t.Close(fd)
		}
	}
}

// OLTPPair is a connected client/server socket pair for the OLTP workload.
type OLTPPair struct {
	Client int64
	Server int64
}

// SetupOLTP creates the listening server and a connected client socket.
func SetupOLTP(t *Thread) (OLTPPair, error) {
	srv := t.Socket()
	if srv < 0 {
		return OLTPPair{}, fmt.Errorf("kernel: socket: %d", srv)
	}
	t.Bind(srv)
	t.Listen(srv)
	cli := t.Socket()
	if cli < 0 {
		return OLTPPair{}, fmt.Errorf("kernel: socket: %d", cli)
	}
	if ret := t.Connect(cli, srv); ret != 0 {
		return OLTPPair{}, fmt.Errorf("kernel: connect: %d", ret)
	}
	return OLTPPair{Client: cli, Server: srv}, nil
}

// OLTPTransaction is one SysBench-style transaction: a socket-intensive
// query/response exchange, query processing in user space (the database
// engine's share of the time), and a little table I/O (figure 11b's
// "socket intensive" macrobenchmark).
func OLTPTransaction(t *Thread, p OLTPPair) {
	t.Poll(p.Client)
	t.Send(p.Client, 128) // query
	// The DB engine evaluates the query: user-space work with no kernel
	// events, which is where macrobenchmarks spend most of their time —
	// the reason macro overhead stays modest while microbenchmarks are
	// "measurably slowed".
	var acc int64 = 1
	for i := 0; i < 24576; i++ {
		acc = acc*1103515245 + 12345
		acc ^= acc >> 16
	}
	sink = acc
	t.Recv(p.Client, 512)         // response rows
	t.Select(p.Client)            // wait for more
	t.Send(p.Client, 64)          // commit
	t.Recv(p.Client, 16)          // ack
	fd := t.Open("/db/table.ibd") // touch the (memory-backed) table
	if fd >= 0 {
		t.Read(fd, 4096)
		t.Close(fd)
	}
}

// sink defeats dead-code elimination of workload compute.
var sink int64

// BuildStep is one compiler-build step: open sources and headers, read
// them, burn some user CPU "compiling", write the object file (figure
// 11b's "FS/compute intensive" macrobenchmark — the Clang build).
func BuildStep(t *Thread, step int) int64 {
	src := fmt.Sprintf("/src/file%d.c", step%64)
	fd := t.Open(src)
	if fd < 0 {
		return fd
	}
	t.Read(fd, 8192)
	for h := 0; h < 4; h++ {
		hfd := t.Open(fmt.Sprintf("/src/hdr%d.h", (step+h)%16))
		if hfd >= 0 {
			t.Read(hfd, 2048)
			t.Close(hfd)
		}
	}
	// "Compute": user-mode work between system calls, no kernel events.
	var acc int64 = 1
	for i := 0; i < 65536; i++ {
		acc = acc*1103515245 + 12345
		acc ^= acc >> 16
	}
	sink = acc
	t.Close(fd)
	ofd := t.Open(fmt.Sprintf("/obj/file%d.o", step%64))
	if ofd >= 0 {
		t.Write(ofd, 4096)
		t.Close(ofd)
	}
	t.Stat(src)
	return acc
}

// ExerciseAll drives every code path the kernel test suite covers: all
// exercised assertion sites fire at least once. Deliberately absent:
// procfs, CPUSET and POSIX real-time scheduling, reproducing the §3.5.2
// coverage gap.
func ExerciseAll(t *Thread) {
	// Filesystem.
	fd := t.Open("/etc/passwd")
	t.Read(fd, 128)
	t.Write(fd, 64)
	t.Close(fd)
	t.Readdir("/")
	t.Stat("/etc/passwd")
	t.Chmod("/etc/passwd", 0o644)
	t.ExtattrGet("/etc/passwd", "user.tag")
	t.ExtattrSet("/etc/passwd", "user.tag")
	t.AclGet("/etc/passwd")
	t.AclSet("/etc/passwd")
	t.PageFault("/etc/passwd")
	t.Exec("/etc/passwd")
	t.Kldload("/etc/passwd")
	vfd := t.Open("/etc/passwd")
	t.Poll(vfd) // vnode-backed poll (MF:vn_poll)
	t.Close(vfd)

	// Sockets.
	if p, err := SetupOLTP(t); err == nil {
		t.Accept(p.Server)
		t.Send(p.Client, 10)
		t.Recv(p.Client, 10)
		t.Poll(p.Client)
		t.Select(p.Client)
		t.Kevent(p.Client)
		t.SockStat(p.Client)
		t.SockVisible(p.Client)
		t.SockRelabel(p.Client, 5)
		t.Close(p.Client)
		t.Close(p.Server)
	}

	// Processes.
	child, _ := t.Fork()
	t.SetPriority(child, 10)
	t.GetPriority(child)
	t.Kill(child, 15)
	t.Ptrace(child)
	t.ExitProc(child)
	t.Wait(child)
	t.Setuid(1001)
	t.Setgid(1001)
	t.GetAudit(child)
	t.SetAudit(child)
	t.SeeCred(child.Cred)
	t.KenvGet(1)
	t.KenvSet(2)
}

// Unexercised returns the names of assertions whose site event never fired
// during the run observed by h — TESLA as a coverage tool (§3.5.2: "of the
// 37 inter-process access-control assertions we wrote, 26 were not
// exercised by FreeBSD's inter-process access-control test suite").
func Unexercised(h *core.CountingHandler, autos []*automata.Automaton) []string {
	fired := map[string]bool{}
	for e, n := range h.Edges() {
		if n > 0 && e.Symbol == "«assertion»" {
			fired[e.Class] = true
		}
	}
	var out []string
	for _, a := range autos {
		if !fired[a.Name] {
			out = append(out, a.Name)
		}
	}
	return out
}
