// tesla-agg is the fleet-scale trace aggregation service: many monitored
// processes (`tesla-run -agg`) stream their lifecycle traces and health
// counters to one tesla-agg, which merges them into a queryable store —
// "which assertion failed where, fleet-wide" without collecting and
// replaying every process's trace file by hand.
//
// Usage:
//
//	tesla-agg serve [-listen addr] [-queue N] [-samples K] [-window N] [-stripes N]
//	                [-snapshot path] [-snapshot-interval dur] [-idle-timeout dur]
//	tesla-agg query [-addr addr] [-class name] [-k N] (fleet|failures|topk|samples|health)
//	tesla-agg resend [-addr addr] -process name [-rm] spooldir
//
// Addresses are TCP host:port by default; "unix:/path" (or any spelling
// containing a path separator) selects a unix socket. Query output is
// indented JSON with a stable field order, so scripts can diff it.
//
// Crash consistency: with -snapshot, serve persists the store atomically
// on an interval and restores it at startup, so a crashed or restarted
// server resumes with its counts intact; producers only treat frames as
// delivered once a snapshot covers them, and resends of anything newer
// deduplicate by sequence number — fleet counts survive crashes on
// either side without double-counting. `tesla-agg resend` replays a
// crashed producer's write-ahead spool (tesla-run -agg-spool) and closes
// its accounting exactly once.
//
// Degradation is never silent: every bounded queue that overflows counts
// its drops per producer, and the fleet query reports them next to the
// ingested totals, so the numbers always sum to what producers sent.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"tesla/internal/agg"
	"tesla/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "serve":
		cmdServe(args)
	case "query":
		cmdQuery(args)
	case "resend":
		cmdResend(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tesla-agg serve [-listen addr] [-queue N] [-samples K] [-window N] [-stripes N]
                  [-snapshot path] [-snapshot-interval dur] [-idle-timeout dur]
  tesla-agg query [-addr addr] [-class name] [-k N] (fleet|failures|topk|samples|health)
  tesla-agg resend [-addr addr] -process name [-rm] spooldir`)
	os.Exit(2)
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:9590", "listen address (host:port, or unix:/path)")
	queue := fs.Int("queue", 0, "per-connection pending-frame queue bound (0 = default)")
	samples := fs.Int("samples", 0, "failure-sample reservoir size per site (0 = default)")
	window := fs.Int("window", 0, "events of leading context kept per failure sample (0 = default)")
	stripes := fs.Int("stripes", 0, "aggregation lock stripes (0 = default)")
	quiet := fs.Bool("quiet", false, "suppress connection diagnostics")
	snapPath := fs.String("snapshot", "", "persist the store to this file and restore it at startup")
	snapEvery := fs.Duration("snapshot-interval", 0, "snapshot interval for -snapshot (0 = default)")
	idle := fs.Duration("idle-timeout", 0, "disconnect producers silent this long (0 = default, negative disables)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		usage()
	}

	ln, err := agg.Listen(*listen)
	if err != nil {
		fatal(err)
	}
	logf := func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, "tesla-agg: "+format+"\n", a...)
	}
	if *quiet {
		logf = nil
	}
	store := agg.NewStore(agg.StoreOpts{Stripes: *stripes, SampleCap: *samples, Window: *window})
	if *snapPath != "" {
		snap, err := agg.LoadSnapshot(*snapPath)
		if err != nil {
			fatal(err)
		}
		if snap != nil {
			store.Restore(snap)
			fmt.Fprintf(os.Stderr, "tesla-agg: restored %d event(s) across %d producer(s) from %s\n",
				snap.TotalEvents, len(snap.Producers), *snapPath)
		}
	}
	srv := agg.NewServer(store, agg.ServerOpts{Queue: *queue, IdleTimeout: *idle, Logf: logf})
	if *snapPath != "" {
		srv.SnapshotEvery(*snapPath, *snapEvery)
	}

	// SIGINT/SIGTERM shut the server down in order: stop accepting, close
	// live connections, drain their queues — so counts visible at exit are
	// final, not racing ingestion — then take one last snapshot of the
	// drained state.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "tesla-agg: shutting down")
		srv.Close()
		close(drained)
	}()

	fmt.Fprintf(os.Stderr, "tesla-agg: listening on %s\n", ln.Addr())
	if err := srv.Serve(ln); err != nil {
		fatal(err)
	}
	// Serve returns as soon as the listener closes; wait for Close to
	// finish draining every connection's queue, then persist the final
	// drained state — the snapshot a restart will resume from.
	<-drained
	if *snapPath != "" {
		if err := srv.SnapshotNow(*snapPath); err != nil {
			fmt.Fprintf(os.Stderr, "tesla-agg: final snapshot: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "tesla-agg: final snapshot written to %s\n", *snapPath)
		}
	}
	// Final fleet summary on shutdown, for the operator's terminal.
	sum, _ := json.MarshalIndent(store.Fleet(), "", "  ")
	fmt.Println(string(sum))
}

// cmdResend replays a crashed producer's write-ahead spool into the
// server and closes its fleet accounting. Safe to re-run: the server
// skips or deduplicates everything already delivered.
func cmdResend(args []string) {
	fs := flag.NewFlagSet("resend", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9590", "tesla-agg server address")
	process := fs.String("process", "", "producer identity the spool belongs to (its -agg-process)")
	rm := fs.Bool("rm", false, "remove the spool directory after a successful resend")
	fs.Parse(args)
	if fs.NArg() != 1 || *process == "" {
		usage()
	}
	dir := fs.Arg(0)
	st, err := agg.ResumeSpool(*addr, *process, dir, agg.ResumeOpts{})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"tesla-agg: resend complete: %d frame(s) / %d event(s) in spool, %d resent, %d already delivered\n",
		st.Frames, st.Events, st.Resent, st.Skipped)
	if *rm {
		if err := os.RemoveAll(dir); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "tesla-agg: removed %s\n", dir)
	}
}

func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9590", "tesla-agg server address")
	class := fs.String("class", "", "automaton class (topk, samples)")
	k := fs.Int("k", 10, "top-K size (topk)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	q := agg.Query{Q: fs.Arg(0), Class: *class, K: *k}

	res, err := runQuery(*addr, q)
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(res)
	fmt.Println()
}

// runQuery performs one query round trip over the wire protocol.
func runQuery(addr string, q agg.Query) ([]byte, error) {
	conn, err := net.Dial(agg.SplitAddr(addr))
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	fw := trace.NewFrameWriter(conn)
	fr := trace.NewFrameReader(conn)
	hello, _ := json.Marshal(agg.Hello{
		Proto: agg.ProtoVersion, Codec: trace.Version, Tool: "tesla-agg", Query: true,
	})
	if _, err := conn.Write([]byte(agg.Magic)); err != nil {
		return nil, err
	}
	if err := fw.Frame(agg.FrameHello, hello); err != nil {
		return nil, err
	}
	kind, payload, err := fr.Next()
	if err != nil || kind != agg.FrameHelloAck {
		return nil, fmt.Errorf("no hello ack from %s: %v", addr, err)
	}
	var ack agg.HelloAck
	if err := json.Unmarshal(payload, &ack); err != nil {
		return nil, err
	}
	if !ack.OK {
		return nil, fmt.Errorf("%s rejected the connection: %s", addr, ack.Message)
	}
	body, _ := json.Marshal(q)
	if err := fw.Frame(agg.FrameQuery, body); err != nil {
		return nil, err
	}
	kind, payload, err = fr.Next()
	if err != nil || kind != agg.FrameResult {
		return nil, fmt.Errorf("no result from %s: %v", addr, err)
	}
	var fail struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(payload, &fail) == nil && fail.Error != "" {
		return nil, fmt.Errorf("%s: %s", addr, fail.Error)
	}
	return payload, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tesla-agg:", err)
	os.Exit(2)
}
