// Package faultinject is a deterministic, seeded fault-injection source for
// chaos-testing the monitor's supervision layer (instance-allocation
// failures, handler panics, trace-ring drops). It answers one question —
// "should this attempt fail?" — from pure arithmetic over (seed, site,
// label, attempt index), so a decision depends only on how many attempts its
// own stream has seen, never on wall clock, goroutine scheduling or the
// interleaving of other streams. Two injectors built from the same seed and
// asked the same questions give identical answers, which is what lets the
// differential harness drive the reference and sharded stores through
// byte-identical fault schedules.
//
// The package is deliberately ignorant of the runtime it breaks: sites and
// labels are strings, and the integration points (core.StoreOpts.AllocFail,
// trace.Recorder.DropFault, panicking test handlers) are closures written at
// the call site:
//
//	inj := faultinject.New(42)
//	inj.SetRate(faultinject.SiteAlloc, 0.01)
//	opts.AllocFail = func(cls *core.Class) bool {
//		return inj.Should(faultinject.SiteAlloc, cls.Name)
//	}
package faultinject

import (
	"math"
	"sort"
	"sync"
)

// Conventional site names. Nothing in the injector treats them specially;
// they exist so tests and tools agree on spelling.
const (
	// SiteAlloc is an instance-slot allocation in a store.
	SiteAlloc = "alloc"
	// SiteHandlerPanic is a lifecycle-handler invocation.
	SiteHandlerPanic = "handler-panic"
	// SiteTraceDrop is a trace-ring push.
	SiteTraceDrop = "trace-drop"
	// SiteWALWrite is a write-ahead-spool frame write (trace.SpoolOpts.
	// WriteFault).
	SiteWALWrite = "wal-write"
	// SiteWALSync is a write-ahead-spool fsync (trace.SpoolOpts.SyncFault).
	SiteWALSync = "wal-sync"
)

// stream identifies one independent decision sequence.
type stream struct {
	site  string
	label string
}

// streamStat is one stream's attempt/fire accounting.
type streamStat struct {
	attempts uint64
	fired    uint64
}

// Injector makes deterministic per-(site, label) fault decisions. The zero
// value is not usable; construct with New. All methods are safe for
// concurrent use.
type Injector struct {
	seed uint64

	mu    sync.Mutex
	rates map[string]uint64 // site → fire threshold in [0, 2^64)
	every map[string]uint64 // site → fire every nth attempt (overrides rate)
	stats map[stream]*streamStat
}

// New creates an injector. Every site starts inert (rate 0): an injector
// nobody configured never fires, so seams can stay installed in production
// paths at zero risk.
func New(seed uint64) *Injector {
	return &Injector{
		seed:  seed,
		rates: make(map[string]uint64),
		every: make(map[string]uint64),
		stats: make(map[stream]*streamStat),
	}
}

// SetRate arms a site with a fire probability in [0, 1]. Each stream of the
// site draws independently but deterministically: attempt n of (site, label)
// fires iff hash(seed, site, label, n) falls under the rate threshold.
func (in *Injector) SetRate(site string, rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	in.mu.Lock()
	if rate == 1 {
		in.rates[site] = math.MaxUint64
	} else {
		in.rates[site] = uint64(rate * float64(1<<63) * 2)
	}
	delete(in.every, site)
	in.mu.Unlock()
}

// SetEvery arms a site to fire on every nth attempt of each stream (n ≥ 1;
// n == 1 fires always). It overrides any rate for the site — the exact
// cadence suits unit tests that need the kth allocation to fail.
func (in *Injector) SetEvery(site string, n uint64) {
	if n == 0 {
		n = 1
	}
	in.mu.Lock()
	in.every[site] = n
	delete(in.rates, site)
	in.mu.Unlock()
}

// Disarm returns a site to inert.
func (in *Injector) Disarm(site string) {
	in.mu.Lock()
	delete(in.rates, site)
	delete(in.every, site)
	in.mu.Unlock()
}

// Should advances the (site, label) stream by one attempt and reports
// whether that attempt fails. Decision n of a stream is a pure function of
// (seed, site, label, n).
func (in *Injector) Should(site, label string) bool {
	k := stream{site: site, label: label}
	in.mu.Lock()
	st := in.stats[k]
	if st == nil {
		st = &streamStat{}
		in.stats[k] = st
	}
	st.attempts++
	n := st.attempts
	fire := false
	if every, ok := in.every[site]; ok {
		fire = n%every == 0
	} else if thr, ok := in.rates[site]; ok && thr > 0 {
		fire = draw(in.seed, site, label, n) < thr || thr == math.MaxUint64
	}
	if fire {
		st.fired++
	}
	in.mu.Unlock()
	return fire
}

// Attempts returns how many decisions the (site, label) stream has made.
func (in *Injector) Attempts(site, label string) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if st := in.stats[stream{site: site, label: label}]; st != nil {
		return st.attempts
	}
	return 0
}

// Fired returns how many attempts of the (site, label) stream failed.
func (in *Injector) Fired(site, label string) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	if st := in.stats[stream{site: site, label: label}]; st != nil {
		return st.fired
	}
	return 0
}

// TotalFired sums fired counts across all streams.
func (in *Injector) TotalFired() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, st := range in.stats {
		n += st.fired
	}
	return n
}

// Streams returns the site|label identifiers seen so far, sorted — a report
// helper for chaos-gate logs.
func (in *Injector) Streams() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.stats))
	for k := range in.stats {
		out = append(out, k.site+"|"+k.label)
	}
	sort.Strings(out)
	return out
}

// draw hashes one attempt of one stream into a uniform uint64. FNV-1a over
// the identifying strings folds the stream into the seed; a splitmix64
// finaliser then decorrelates consecutive attempt indices.
func draw(seed uint64, site, label string, n uint64) uint64 {
	h := seed ^ 0xcbf29ce484222325
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 0x100000001b3
	}
	h ^= 0x7c
	h *= 0x100000001b3
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 0x100000001b3
	}
	h ^= n
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
