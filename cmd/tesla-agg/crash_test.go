package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"tesla/internal/agg"
	"tesla/internal/trace"
)

// TestCrashGate is the process-level half of the crash gate (the
// in-process half is internal/agg's TestCrashSchedules): it SIGKILLs
// real tesla-run producers and a real tesla-agg server at randomized
// points and asserts the two durability invariants the ISSUE promises.
//
//   - Trace spool: whatever a killed run left in -trace-spool recovers
//     to a verbatim prefix of an uninterrupted run's trace — same
//     events, same order, nothing invented, nothing silently dropped.
//   - Fleet accounting: after a producer crash, `tesla-agg resend`
//     replays the write-ahead spool and the server's seq dedup plus
//     snapshot/restore keep every event counted exactly once, across a
//     server SIGKILL and restart on the same address.
func TestCrashGate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills binaries")
	}
	dir := t.TempDir()
	bins := map[string]string{
		"tesla-agg":   filepath.Join(dir, "tesla-agg"),
		"tesla-run":   filepath.Join(dir, "tesla-run"),
		"tesla-trace": filepath.Join(dir, "tesla-trace"),
	}
	for pkg, out := range bins {
		cmd := exec.Command("go", "build", "-o", out, "tesla/cmd/"+pkg)
		cmd.Env = os.Environ()
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, b)
		}
	}
	src := filepath.Join("testdata", "worker.c")
	rng := rand.New(rand.NewSource(20260807))

	// Reference run: the uncrashed trace every recovered spool must be a
	// prefix of. worker.c is deterministic, so one reference serves all.
	refPath := filepath.Join(dir, "ref.tr")
	run := exec.Command(bins["tesla-run"], "-trace", refPath, "-arg", workerIters, src)
	if out, err := run.CombinedOutput(); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out)
	}
	ref := readTraceFile(t, refPath)
	if ref.Dropped != 0 || len(ref.Events) == 0 {
		t.Fatalf("reference trace unusable: %d events, %d dropped", len(ref.Events), ref.Dropped)
	}

	t.Run("SpoolPrefix", func(t *testing.T) { spoolPrefixSweep(t, bins, src, ref, rng) })
	t.Run("ExactlyOnce", func(t *testing.T) { exactlyOnceDance(t, bins, src, ref, rng) })
}

// workerIters sizes worker.c so an uninterrupted run lasts long enough
// to kill mid-flight (~0.7s) while its event total stays under the
// default per-thread ring — no overwrites, so spool prefixes are exact.
const workerIters = "3000"

// spoolPrefixSweep SIGKILLs -trace-spool runs at random points and
// asserts every recovered spool is a verbatim prefix of the reference.
func spoolPrefixSweep(t *testing.T, bins map[string]string, src string, ref *trace.Trace, rng *rand.Rand) {
	const kills = 8
	recovered := 0
	for i := 0; i < kills; i++ {
		spool := filepath.Join(t.TempDir(), "spool")
		run := exec.Command(bins["tesla-run"],
			"-trace-spool", spool, "-spool-sync", "always", "-arg", workerIters, src)
		if err := run.Start(); err != nil {
			t.Fatalf("start run %d: %v", i, err)
		}
		delay := time.Duration(30+rng.Intn(650)) * time.Millisecond
		time.Sleep(delay)
		run.Process.Kill()
		run.Wait()

		tr, err := trace.ReadSpool(spool)
		if err != nil {
			// A kill before the first flush leaves an empty spool: a
			// trivially valid (empty) prefix, not a failure.
			if strings.Contains(err.Error(), "no recoverable frames") {
				t.Logf("kill %d at %v: spool empty", i, delay)
				continue
			}
			t.Fatalf("kill %d at %v: recover spool: %v", i, delay, err)
		}
		if tr.Dropped != 0 {
			t.Fatalf("kill %d: recovered spool reports %d dropped events", i, tr.Dropped)
		}
		if len(tr.Events) > len(ref.Events) {
			t.Fatalf("kill %d: spool has %d events, reference only %d", i, len(tr.Events), len(ref.Events))
		}
		for j := range tr.Events {
			if !reflect.DeepEqual(tr.Events[j], ref.Events[j]) {
				t.Fatalf("kill %d at %v: event %d diverges from reference:\n  spool: %+v\n  ref:   %+v",
					i, delay, j, tr.Events[j], ref.Events[j])
			}
		}
		recovered++
		t.Logf("kill %d at %v: %d/%d events recovered, exact prefix", i, delay, len(tr.Events), len(ref.Events))

		// Once, drive the operator path too: tesla-trace show on the raw
		// spool directory must recover and print the same event count.
		if recovered == 1 {
			out, err := exec.Command(bins["tesla-trace"], "show", spool).Output()
			if err != nil {
				t.Fatalf("tesla-trace show %s: %v", spool, err)
			}
			want := fmt.Sprintf("%d events", len(tr.Events))
			if !strings.Contains(strings.SplitN(string(out), "\n", 2)[0], want) {
				t.Fatalf("tesla-trace show header lacks %q:\n%s", want, out)
			}
		}
	}
	if recovered == 0 {
		t.Fatal("no kill point recovered any frames — the sweep tested nothing")
	}
}

// exactlyOnceDance crashes a producer mid-stream and the server after a
// resend, restarts the server from its snapshot on the same address,
// resends again, and asserts the fleet counts come out exactly once.
func exactlyOnceDance(t *testing.T, bins map[string]string, src string, ref *trace.Trace, rng *rand.Rand) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "agg.sock")
	snap := filepath.Join(dir, "snap.json")
	serve := func() *exec.Cmd {
		srv := exec.Command(bins["tesla-agg"], "serve", "-listen", "unix:"+sock, "-quiet",
			"-snapshot", snap, "-snapshot-interval", "30ms")
		srv.Stderr = os.Stderr
		if err := srv.Start(); err != nil {
			t.Fatalf("start serve: %v", err)
		}
		// The stale socket file of a killed predecessor may still exist,
		// so wait for the new server to actually accept, not for the path.
		waitForAccept(t, sock)
		return srv
	}
	srv := serve()
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()

	// A clean producer runs to completion: its accounting is the control —
	// crash handling must not disturb the ordinary path.
	cleanSpool := filepath.Join(dir, "clean-spool")
	run := exec.Command(bins["tesla-run"], "-agg", "unix:"+sock, "-agg-process", "clean",
		"-agg-spool", cleanSpool, "-arg", "300", src)
	if out, err := run.CombinedOutput(); err != nil {
		t.Fatalf("clean producer: %v\n%s", err, out)
	}
	const cleanOracle = 300 * 13 // 13 events per worker.c step()

	// The crash victim: killed mid-stream, its write-ahead spool is the
	// only complete record of what it sent.
	crashSpool := filepath.Join(dir, "crash-spool")
	victim := exec.Command(bins["tesla-run"], "-agg", "unix:"+sock, "-agg-process", "crashed",
		"-agg-spool", crashSpool, "-arg", workerIters, src)
	if err := victim.Start(); err != nil {
		t.Fatalf("start victim: %v", err)
	}
	time.Sleep(time.Duration(150+rng.Intn(350)) * time.Millisecond)
	victim.Process.Kill()
	victim.Wait()

	spoolFrames, spoolEvents := aggSpoolTotals(t, crashSpool)
	if spoolFrames == 0 {
		t.Skip("victim died before spooling anything — nothing to resend")
	}
	t.Logf("victim spool: %d frames / %d events", spoolFrames, spoolEvents)

	resend := func(extra ...string) {
		t.Helper()
		args := append([]string{"resend", "-addr", "unix:" + sock, "-process", "crashed"}, extra...)
		args = append(args, crashSpool)
		if out, err := exec.Command(bins["tesla-agg"], args...).CombinedOutput(); err != nil {
			t.Fatalf("resend %v: %v\n%s", extra, err, out)
		}
	}
	resend()

	// Let the snapshot loop cover the resend, then SIGKILL the server —
	// the socket file stays behind, and the restart must reclaim it and
	// resume from the snapshot.
	time.Sleep(150 * time.Millisecond)
	srv.Process.Signal(syscall.SIGKILL)
	srv.Wait()
	srv = serve()

	// Resending the same spool again must deduplicate, not double-count;
	// -rm then retires the delivered spool.
	resend("-rm")
	if _, err := os.Stat(crashSpool); !os.IsNotExist(err) {
		t.Fatalf("resend -rm left the spool behind: %v", err)
	}

	out, err := exec.Command(bins["tesla-agg"], "query", "-addr", "unix:"+sock, "fleet").Output()
	if err != nil {
		t.Fatalf("fleet query: %v", err)
	}
	var sum agg.FleetSummary
	if err := json.Unmarshal(out, &sum); err != nil {
		t.Fatalf("fleet JSON: %v", err)
	}
	byName := map[string]agg.ProducerStat{}
	for _, p := range sum.Producers {
		byName[p.Process] = p
	}

	clean, ok := byName["clean"]
	if !ok || !clean.Clean {
		t.Fatalf("clean producer lost across server crash: %+v", byName)
	}
	if clean.SentEvents != cleanOracle || clean.Events+clean.DroppedEvents != cleanOracle {
		t.Fatalf("clean producer accounting: %+v (oracle %d)", clean, cleanOracle)
	}

	crashed, ok := byName["crashed"]
	if !ok || !crashed.Clean {
		t.Fatalf("crashed producer not closed by resend: %+v", byName)
	}
	// Exactly once: every spooled event is counted or explicitly dropped,
	// and never more than once — across a live stream, two resends, and a
	// server kill in between.
	if crashed.Events+crashed.DroppedEvents != spoolEvents {
		t.Fatalf("crashed producer counts %d+%d, spool holds %d: not exactly once: %+v",
			crashed.Events, crashed.DroppedEvents, spoolEvents, crashed)
	}
	if crashed.Events > uint64(len(ref.Events)) {
		t.Fatalf("crashed producer counts %d events, uncrashed run only emits %d",
			crashed.Events, len(ref.Events))
	}
	t.Logf("exactly once: crashed=%d/%d spooled events, dup frames seen: %d",
		crashed.Events, spoolEvents, crashed.DupFrames)
}

// aggSpoolTotals sums the sequenced frames in a tesla-run -agg-spool
// directory: the loss-free record of everything the producer sent.
func aggSpoolTotals(t *testing.T, dir string) (frames, events uint64) {
	t.Helper()
	sp, err := trace.OpenSpool(dir, trace.SpoolOpts{Sync: trace.SpoolSyncNone})
	if err != nil {
		t.Fatalf("open agg spool: %v", err)
	}
	defer sp.Close()
	err = sp.Range(func(payload []byte) error {
		_, n, _, err := agg.SeqTraceInfo(payload)
		if err != nil {
			return err
		}
		frames++
		events += n
		return nil
	})
	if err != nil {
		t.Fatalf("read agg spool: %v", err)
	}
	return frames, events
}

func waitForAccept(t *testing.T, sock string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if conn, err := net.DialTimeout("unix", sock, time.Second); err == nil {
			conn.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("server on %s never accepted", sock)
}

func readTraceFile(t *testing.T, path string) *trace.Trace {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return tr
}
