package automata

import (
	"fmt"
	"sort"
	"strings"

	"tesla/internal/core"
)

// Dot renders the automaton as a Graphviz digraph. If weights is non-nil
// (edge counts from a core.CountingHandler), transitions are weighted
// according to their occurrence at run time, reproducing the combined
// static-description / dynamic-behaviour graphs of figure 9. This lets the
// programmer visually inspect the portions of the state graph that are
// executed in practice — coverage at a logical rather than source-line
// level (§4.4.2).
func (a *Automaton) Dot(weights map[core.TransitionEdge]uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", a.Name)
	b.WriteString("\trankdir=TB;\n")
	b.WriteString("\tnode [shape=ellipse fontname=\"Helvetica\"];\n")

	var max uint64 = 1
	if weights != nil {
		for e, n := range weights {
			if e.Class == a.Name && n > max {
				max = n
			}
		}
	}

	fmt.Fprintf(&b, "\ts0 [label=\"state 0\\n«pre-init»\" style=dashed];\n")
	for s := uint32(1); s < a.Accept; s++ {
		fmt.Fprintf(&b, "\ts%d [label=\"state %d\"];\n", s, s)
	}
	fmt.Fprintf(&b, "\ts%d [label=\"state %d\\n«accept»\" shape=doublecircle];\n", a.Accept, a.Accept)

	type edge struct {
		from, to uint32
		label    string
		weight   uint64
	}
	var edges []edge
	for sym, ts := range a.Trans {
		s := a.Symbols[sym]
		for _, t := range ts {
			label := s.Name
			switch {
			case t.Init():
				label += "\\n«init»"
			case t.Cleanup():
				label += "\\n«cleanup»"
			}
			var w uint64
			if weights != nil {
				w = weights[core.TransitionEdge{Class: a.Name, From: t.From, To: t.To, Symbol: s.Name}]
			}
			edges = append(edges, edge{t.From, t.To, label, w})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		if edges[i].to != edges[j].to {
			return edges[i].to < edges[j].to
		}
		return edges[i].label < edges[j].label
	})
	for _, e := range edges {
		attrs := fmt.Sprintf("label=\"%s\"", e.label)
		if weights != nil {
			pen := 1 + 4*float64(e.weight)/float64(max)
			attrs += fmt.Sprintf(" penwidth=%.2f", pen)
			attrs += fmt.Sprintf(" xlabel=\"%d\"", e.weight)
			if e.weight == 0 {
				attrs += " color=gray style=dotted"
			}
		}
		fmt.Fprintf(&b, "\ts%d -> s%d [%s];\n", e.from, e.to, attrs)
	}
	b.WriteString("}\n")
	return b.String()
}
