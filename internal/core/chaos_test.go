package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tesla/internal/faultinject"
)

// Chaos property suite: the supervision layer under deterministic fault
// injection (internal/faultinject). The acceptance bar from the issue:
// with injected allocation failures and handler panics at 1% and 10% rates,
// the monitor never deadlocks, never corrupts instance state, degrades
// per-class (no cross-class interference), and health counters exactly
// account for every suppressed event. `make chaos-gate` runs this file under
// -race with the fixed seed matrix below.

var chaosSeeds = []int64{1, 7, 42, 1337, 99991}

// chaosPolicies is the degradation matrix one schedule draws from.
var chaosPolicies = []OverflowPolicy{DropNew, EvictOldest, QuarantineClass}

// healthOf flattens a class's health for comparison (HandlerPanics excluded:
// it is attributed store-wide at dispatch, not part of store parity).
func healthOf(s *Store, cls *Class) [5]uint64 {
	h := s.Health(cls)
	return [5]uint64{h.Violations, h.Overflows, h.Evictions, h.Suppressed, h.Quarantines}
}

// runChaosDifferential drives one randomised schedule with injected
// allocation failures through the reference and sharded stores, asserting
// after every event that verdicts, live counts, instance sets, notification
// multisets, quarantine state and health counters all agree. The two stores
// get two injectors built from the same seed, so they see byte-identical
// fault schedules.
func runChaosDifferential(t *testing.T, seed int64, shards int, rate float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pol := chaosPolicies[rng.Intn(len(chaosPolicies))]
	cls := &Class{
		Name:   "chaos",
		States: 8,
		Limit:  2 + rng.Intn(6),
		// Small thresholds make quarantine and re-arm reachable inside a
		// 64-event schedule.
		Overflow:        pol,
		QuarantineAfter: 1 + rng.Intn(3),
		RearmEvents:     1 + rng.Intn(6),
	}
	states := uint32(3 + rng.Intn(3))

	injRef := faultinject.New(uint64(seed))
	injSh := faultinject.New(uint64(seed))
	injRef.SetRate(faultinject.SiteAlloc, rate)
	injSh.SetRate(faultinject.SiteAlloc, rate)

	href := &noteHandler{}
	hsh := &noteHandler{}
	ref := NewStoreOpts(StoreOpts{
		Context: Global, Handler: href, Shards: 1,
		AllocFail: func(c *Class) bool { return injRef.Should(faultinject.SiteAlloc, c.Name) },
	})
	sh := NewStoreOpts(StoreOpts{
		Context: Global, Handler: hsh, Shards: shards,
		AllocFail: func(c *Class) bool { return injSh.Should(faultinject.SiteAlloc, c.Name) },
	})
	failFast := rng.Intn(2) == 0
	ref.FailFast = failFast
	sh.FailFast = failFast
	ref.Register(cls)
	sh.Register(cls)

	for i, ev := range randSchedule(rng, states, 64) {
		var errRef, errSh error
		switch ev.op {
		case "reset":
			ref.Reset()
			sh.Reset()
		case "resetclass":
			ref.ResetClass(cls)
			sh.ResetClass(cls)
		default:
			errRef = ref.UpdateState(cls, ev.symbol, ev.flags, ev.key, ev.ts)
			errSh = sh.UpdateState(cls, ev.symbol, ev.flags, ev.key, ev.ts)
		}
		if (errRef == nil) != (errSh == nil) {
			t.Fatalf("seed %d rate %v event %d (%s %s): verdict diverged: ref=%v sharded=%v",
				seed, rate, i, ev.symbol, ev.key, errRef, errSh)
		}
		if qr, qs := ref.Quarantined(cls), sh.Quarantined(cls); qr != qs {
			t.Fatalf("seed %d rate %v event %d: quarantine diverged: ref=%v sharded=%v",
				seed, rate, i, qr, qs)
		}
		if lr, ls := ref.LiveCount(cls), sh.LiveCount(cls); lr != ls {
			t.Fatalf("seed %d rate %v event %d (%s %s): live diverged: ref=%d sharded=%d",
				seed, rate, i, ev.symbol, ev.key, lr, ls)
		}
		if ir, is := instSet(ref, cls), instSet(sh, cls); !reflect.DeepEqual(ir, is) {
			t.Fatalf("seed %d rate %v event %d: instances diverged:\nref:     %v\nsharded: %v",
				seed, rate, i, ir, is)
		}
		if hr, hs := healthOf(ref, cls), healthOf(sh, cls); hr != hs {
			t.Fatalf("seed %d rate %v event %d: health diverged:\nref:     %v\nsharded: %v",
				seed, rate, i, hr, hs)
		}
		if nr, ns := href.sorted(), hsh.sorted(); !reflect.DeepEqual(nr, ns) {
			t.Fatalf("seed %d rate %v event %d: notifications diverged:\nref:     %v\nsharded: %v",
				seed, rate, i, nr, ns)
		}
	}
	if fr, fs := injRef.TotalFired(), injSh.TotalFired(); fr != fs {
		t.Fatalf("seed %d rate %v: injectors diverged: ref fired %d, sharded %d", seed, rate, fr, fs)
	}
}

// TestChaosDifferentialInjected extends the differential harness with the
// policy matrix and fault-injected allocation failures at the issue's 1% and
// 10% rates (plus a brutal 50%), across stripe counts.
func TestChaosDifferentialInjected(t *testing.T) {
	n := 0
	for _, rate := range []float64{0.01, 0.10, 0.50} {
		for i := 0; i < 150; i++ {
			shards := []int{2, 4, 8, 16}[i%4]
			runChaosDifferential(t, int64(5000+i), shards, rate)
			n++
		}
	}
	if n < 400 {
		t.Fatalf("schedule budget shrank: %d", n)
	}
}

// classStream extracts one class's notification subsequence, in order.
func classStream(h *noteHandler, cls string) []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for _, n := range h.notes {
		if strings.Contains(n, "|"+cls+"|") || strings.HasSuffix(n, "|"+cls) {
			out = append(out, n)
		}
	}
	return out
}

// runIsolation drives a hot class A (tiny limit, quarantine policy, injected
// allocation failures) interleaved with a healthy class B through one store
// and returns B's exact notification stream and verdict sequence.
func runIsolation(t *testing.T, shards int, inject bool, rate float64) ([]string, string) {
	t.Helper()
	a := &Class{Name: "iso-a", States: 4, Limit: 1, Overflow: QuarantineClass, QuarantineAfter: 2, RearmEvents: 4}
	b := &Class{Name: "iso-b", States: 4, Limit: 8}

	inj := faultinject.New(2026)
	inj.SetRate(faultinject.SiteAlloc, rate)
	h := &noteHandler{}
	s := NewStoreOpts(StoreOpts{
		Context: Global, Handler: h, Shards: shards,
		AllocFail: func(c *Class) bool {
			if !inject || c.Name != "iso-a" {
				return false
			}
			return inj.Should(faultinject.SiteAlloc, c.Name)
		},
	})
	s.Register(a)
	s.Register(b)

	enter := initTS()
	mid := TransitionSet{{From: 1, To: 2, KeyMask: 1}, {From: 2, To: 1, KeyMask: 1}}
	site := TransitionSet{{From: 2, To: 3, KeyMask: 1}}

	var verdicts strings.Builder
	rng := rand.New(rand.NewSource(4242))
	for i := 0; i < 400; i++ {
		// Class A: hammer inits so it overflows and quarantines.
		s.UpdateState(a, "enter", 0, NewKey(Value(rng.Intn(50))), enter)
		// Class B: a well-behaved workload whose outcomes we fingerprint.
		k := NewKey(Value(rng.Intn(4)))
		switch i % 5 {
		case 0:
			err := s.UpdateState(b, "enter", 0, k, enter)
			fmt.Fprintf(&verdicts, "%d:enter:%v\n", i, err)
		case 3:
			err := s.UpdateState(b, "site", SymRequired, k, site)
			fmt.Fprintf(&verdicts, "%d:site:%v\n", i, err)
		default:
			err := s.UpdateState(b, "mid", 0, k, mid)
			fmt.Fprintf(&verdicts, "%d:mid:%v\n", i, err)
		}
	}
	if inject && !s.Quarantined(a) && s.Health(a).Quarantines == 0 {
		t.Fatal("isolation run never quarantined class A; test lost its teeth")
	}
	if hb := s.Health(b); hb.Degraded() {
		t.Fatalf("class B degraded: %+v", hb)
	}
	return classStream(h, "iso-b"), verdicts.String()
}

// TestChaosCrossClassIsolation: quarantining (and fault-injecting) class A
// leaves class B's notifications and verdicts byte-identical to an
// uninjected run, on both store implementations and both issue rates.
func TestChaosCrossClassIsolation(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, rate := range []float64{0.01, 0.10} {
			baseNotes, baseVerdicts := runIsolation(t, shards, false, rate)
			injNotes, injVerdicts := runIsolation(t, shards, true, rate)
			if injVerdicts != baseVerdicts {
				t.Fatalf("shards=%d rate=%v: class B verdicts diverged under class-A faults", shards, rate)
			}
			if !reflect.DeepEqual(injNotes, baseNotes) {
				t.Fatalf("shards=%d rate=%v: class B notifications diverged under class-A faults:\nbase: %v\ninj:  %v",
					shards, rate, baseNotes, injNotes)
			}
		}
	}
}

// injectedPanicHandler panics on a deterministic injected schedule.
type injectedPanicHandler struct {
	NopHandler
	inj *faultinject.Injector
}

func (h *injectedPanicHandler) Transition(cls *Class, inst *Instance, from, to uint32, symbol string) {
	if h.inj.Should(faultinject.SiteHandlerPanic, cls.Name) {
		panic("injected handler panic")
	}
}

// TestChaosHandlerPanicRates: with handler panics injected at 1% and 10%,
// no panic escapes, every panic is counted, and the store keeps monitoring.
func TestChaosHandlerPanicRates(t *testing.T) {
	for _, shards := range []int{1, 4} {
		for _, rate := range []float64{0.01, 0.10} {
			inj := faultinject.New(77)
			inj.SetRate(faultinject.SiteHandlerPanic, rate)
			cls := &Class{Name: "hp", States: 4, Limit: 64}
			s := NewStoreOpts(StoreOpts{
				Context: Global, Shards: shards,
				Handler: &injectedPanicHandler{inj: inj},
				// Keep the handler in service so every injected panic is
				// exercised rather than short-circuited by quarantine.
				HandlerPanicLimit: 1 << 30,
			})
			s.Register(cls)
			mid := TransitionSet{{From: 1, To: 2, KeyMask: 1}, {From: 2, To: 1, KeyMask: 1}}
			for i := 0; i < 2000; i++ {
				k := NewKey(Value(i % 64))
				s.UpdateState(cls, "enter", 0, k, initTS())
				s.UpdateState(cls, "mid", 0, k, mid)
			}
			if got, want := s.HandlerPanics(), inj.Fired(faultinject.SiteHandlerPanic, "hp"); got != want {
				t.Fatalf("shards=%d rate=%v: recovered %d panics, injector fired %d", shards, rate, got, want)
			}
			if got := s.HandlerPanics(); got == 0 {
				t.Fatalf("shards=%d rate=%v: no panics injected; test lost its teeth", shards, rate)
			}
			if n := s.LiveCount(cls); n != 64 {
				t.Fatalf("shards=%d rate=%v: live=%d, monitoring degraded by handler faults", shards, rate, n)
			}
		}
	}
}

// TestChaosConcurrentInvariants hammers a sharded store from several
// goroutines with every policy active, allocation failures and handler
// panics injected at 10%, and trace-style re-entrant reads mixed in. The
// schedule must complete (no deadlock — enforced by a watchdog), leave
// instance state structurally consistent, and keep -race silent.
func TestChaosConcurrentInvariants(t *testing.T) {
	for _, seed := range chaosSeeds {
		inj := faultinject.New(uint64(seed))
		inj.SetRate(faultinject.SiteAlloc, 0.10)
		inj.SetRate(faultinject.SiteHandlerPanic, 0.10)

		classes := []*Class{
			{Name: "c-drop", States: 8, Limit: 16},
			{Name: "c-evict", States: 8, Limit: 16, Overflow: EvictOldest},
			{Name: "c-quar", States: 8, Limit: 16, Overflow: QuarantineClass, QuarantineAfter: 4, RearmEvents: 32},
		}
		s := NewStoreOpts(StoreOpts{
			Context: Global, Shards: 8,
			Handler:           &injectedPanicHandler{inj: inj},
			HandlerPanicLimit: 1 << 30,
			AllocFail:         func(c *Class) bool { return inj.Should(faultinject.SiteAlloc, c.Name) },
		})
		for _, c := range classes {
			s.Register(c)
		}

		enter := initTS()
		mid := TransitionSet{{From: 1, To: 2, KeyMask: 1}, {From: 2, To: 1, KeyMask: 3}}
		exit := TransitionSet{{From: 1, To: 7, Flags: TransCleanup}, {From: 2, To: 7, Flags: TransCleanup}}

		done := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g)*31 + seed))
				for i := 0; i < 600; i++ {
					cls := classes[rng.Intn(len(classes))]
					switch rng.Intn(12) {
					case 0:
						s.UpdateState(cls, "exit", 0, AnyKey, exit)
					case 1:
						s.UpdateState(cls, "site", SymRequired, randKey(rng), mid)
					case 2:
						_ = s.Instances(cls)
						_ = s.HealthReport()
					case 3:
						s.UpdateState(cls, "enter", 0, AnyKey, enter)
					default:
						s.UpdateState(cls, "enter", 0, randKey(rng), enter)
						s.UpdateState(cls, "mid", 0, randKey(rng), mid)
					}
				}
			}(g)
		}
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("seed %d: chaos schedule deadlocked", seed)
		}

		for _, cls := range classes {
			insts := s.Instances(cls)
			if len(insts) != s.LiveCount(cls) {
				t.Fatalf("seed %d %s: LiveCount=%d but %d instances", seed, cls.Name, s.LiveCount(cls), len(insts))
			}
			seen := map[Key]bool{}
			for _, in := range insts {
				if !in.Active {
					t.Fatalf("seed %d %s: inactive instance in snapshot", seed, cls.Name)
				}
				if seen[in.Key] {
					t.Fatalf("seed %d %s: duplicate live key %s", seed, cls.Name, in.Key)
				}
				seen[in.Key] = true
			}
		}
		if s.HandlerPanics() == 0 {
			t.Fatalf("seed %d: no handler panics injected; test lost its teeth", seed)
		}
		// The store still works after the storm: a fresh class monitors.
		fresh := &Class{Name: "fresh", States: 3, Limit: 4}
		s.Register(fresh)
		s2 := NewStoreOpts(StoreOpts{Context: Global, Shards: 8})
		s2.Register(fresh)
		s.ResetClass(fresh)
		if err := s2.UpdateState(fresh, "enter", 0, NewKey(1), initTS()); err != nil {
			t.Fatalf("seed %d: post-chaos monitoring broken: %v", seed, err)
		}
	}
}

// TestChaosSuppressionExact: health counters account for every suppressed
// event exactly. The schedule is built so the quarantine/re-arm trajectory
// is fully predictable, then asserted event-for-event on both stores.
func TestChaosSuppressionExact(t *testing.T) {
	bothStores(t, func(t *testing.T, mk func(o StoreOpts) *Store) {
		cls := &Class{Name: "sup", States: 3, Limit: 1, Overflow: QuarantineClass, QuarantineAfter: 1, RearmEvents: 10}
		s := mk(StoreOpts{})
		s.Register(cls)

		s.UpdateState(cls, "enter", 0, NewKey(1), initTS()) // fills the single slot
		s.UpdateState(cls, "enter", 0, NewKey(2), initTS()) // overflow → quarantine #1
		// Drive 25 more inits, each with a fresh key so every processed one
		// is an allocation attempt. Expected trajectory:
		//   events  1–10: suppressed            (Suppressed 10)
		//   event     11: re-arms, alloc OK     (live 1)
		//   event     12: overflow → quarantine #2
		//   events 13–22: suppressed            (Suppressed 20)
		//   event     23: re-arms, alloc OK     (live 1)
		//   event     24: overflow → quarantine #3
		//   event     25: suppressed            (Suppressed 21)
		const driven = 25
		for i := 0; i < driven; i++ {
			s.UpdateState(cls, "enter", 0, NewKey(Value(100+i)), initTS())
		}
		h := s.Health(cls)
		if h.Suppressed != 21 {
			t.Fatalf("Suppressed = %d, want 21 (health %+v)", h.Suppressed, h)
		}
		if h.Quarantines != 3 || h.Overflows != 3 {
			t.Fatalf("Quarantines = %d, Overflows = %d, want 3/3", h.Quarantines, h.Overflows)
		}
		// Accounting identity: every driven event is either suppressed or
		// processed, and every processed event is visible as an overflow or
		// a successful allocation (the two re-arm events).
		processed := driven - int(h.Suppressed)
		if visible := int(h.Overflows-1) + 2; processed != visible {
			t.Fatalf("processed %d events but only %d visible in health", processed, visible)
		}
		if !s.Quarantined(cls) {
			t.Fatal("class should end quarantined")
		}
	})
}
