// tesla-bench regenerates the paper's evaluation tables and figures (§5)
// against the simulated substrates. Absolute numbers reflect this machine
// and the simulator; the within-figure comparisons are the reproduction
// target. See EXPERIMENTS.md for the recorded paper-vs-measured shapes.
//
// Usage:
//
//	tesla-bench -all
//	tesla-bench -table 1
//	tesla-bench -fig 9|10|11a|11b|12|13|14a|14b|elide|trace|shard|rebuild|faults|agg|ingest|compile
//
// -fig elide (alias: elision) prints the hook/instruction counts of the
// three elision rungs: full instrumentation, safety-only elision, and
// elision with the liveness refinement.
package main

import (
	"flag"
	"fmt"
	"os"

	"tesla/internal/bench"
)

func main() {
	all := flag.Bool("all", false, "run everything")
	table := flag.String("table", "", "regenerate a table (1)")
	fig := flag.String("fig", "", "regenerate a figure (9, 10, 11a, 11b, 12, 13, 14a, 14b, elide, trace, shard, rebuild, faults, agg, ingest, compile)")
	iters := flag.Int("iters", 2000, "iterations per measurement")
	files := flag.Int("files", 24, "files in the figure 10 synthetic codebase")
	flag.Parse()

	if !*all && *table == "" && *fig == "" {
		fmt.Fprintln(os.Stderr, "usage: tesla-bench -all | -table 1 | -fig 9|10|11a|11b|12|13|14a|14b|elide|trace|shard|rebuild|faults|agg|ingest|compile")
		os.Exit(2)
	}

	w := os.Stdout
	run := func(name string, fn func() error) {
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "tesla-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	want := func(name string) bool { return *all || *table == name || *fig == name }

	if want("1") && *fig == "" {
		bench.Table1(w)
	}
	if want("9") && *table == "" {
		run("fig9", func() error { return bench.Fig9(w, *iters) })
	}
	if want("10") && *table == "" {
		run("fig10", func() error { return bench.Fig10(w, *files, 6) })
	}
	if want("11a") {
		run("fig11a", func() error { return bench.Fig11a(w, *iters) })
	}
	if want("11b") {
		run("fig11b", func() error { return bench.Fig11b(w, *iters) })
	}
	if want("12") {
		run("fig12", func() error { return bench.Fig12(w, *iters) })
	}
	if want("13") {
		run("fig13", func() error { return bench.Fig13(w, *iters) })
	}
	if want("14a") {
		bench.Fig14a(w, *iters*10)
	}
	if want("14b") {
		run("fig14b", func() error { return bench.Fig14b(w, 256) })
	}
	if want("elision") || want("elide") {
		run("elision", func() error { return bench.Elision(w, *files, 6) })
	}
	if want("trace") {
		run("trace", func() error { return bench.TraceOverhead(w, *iters) })
	}
	if want("shard") {
		run("shard", func() error { return bench.FigShard(w, *iters) })
	}
	if want("rebuild") {
		run("rebuild", func() error { return bench.FigRebuild(w, *files, 6) })
	}
	if want("faults") {
		run("faults", func() error { return bench.FigFaults(w, *iters) })
	}
	if want("agg") {
		run("agg", func() error { return bench.FigAgg(w, *iters) })
	}
	if want("ingest") {
		run("ingest", func() error { return bench.FigIngest(w, *iters) })
	}
	if want("compile") {
		run("compile", func() error { return bench.FigCompile(w, *iters) })
	}
}
