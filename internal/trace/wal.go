package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// This file is the durability half of the trace layer: a segmented
// write-ahead spool. A Spool is an append-only log of opaque frames —
// each frame carries a length prefix and a CRC — split across bounded
// segment files, with a configurable fsync policy. Opening a spool
// repairs it: a tail torn by a crash (a half-written frame, a corrupt
// CRC, a truncated header) is cut back to the last whole frame, so a
// recovered spool is always a valid frame prefix of what was appended.
//
// Two producers sit on it: tesla-run -trace-spool streams delta traces
// (Recorder.CutSince cuts, via SpoolWriter) so a SIGKILL'd process loses
// at most one flush interval of events, and the tesla-agg client
// overflows undeliverable wire frames to disk so a server outage or a
// producer crash never silently loses accounted events.

// walMagic opens every segment file, followed by one version byte.
const walMagic = "TESLAWAL"

// walVersion is the segment format version. Openers reject others.
const walVersion = 1

const walHeaderSize = len(walMagic) + 1

// walFrameHeader is the per-frame header: 4-byte little-endian payload
// length, then 4-byte little-endian CRC-32C of the payload.
const walFrameHeader = 8

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms that matter.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// SpoolSync selects when appends reach stable storage.
type SpoolSync int

const (
	// SpoolSyncAlways fsyncs after every append — the default, and what
	// the crash gate's prefix invariant assumes: an Append that returned
	// is durable.
	SpoolSyncAlways SpoolSync = iota
	// SpoolSyncInterval fsyncs at most once per SyncEvery, trading the
	// tail of one interval for fewer fsyncs.
	SpoolSyncInterval
	// SpoolSyncNone never fsyncs explicitly; durability is whatever the
	// OS page cache provides. Survives process crashes, not power loss.
	SpoolSyncNone
)

// ParseSpoolSync maps the flag spellings to a policy.
func ParseSpoolSync(s string) (SpoolSync, error) {
	switch s {
	case "", "always":
		return SpoolSyncAlways, nil
	case "interval":
		return SpoolSyncInterval, nil
	case "none":
		return SpoolSyncNone, nil
	}
	return 0, fmt.Errorf("trace: unknown spool sync policy %q (want always, interval or none)", s)
}

// SpoolOpts configures a Spool; the zero value selects the defaults.
type SpoolOpts struct {
	// SegmentBytes rotates to a fresh segment file once the active one
	// exceeds this size (default 4 MiB).
	SegmentBytes int64
	// Sync is the fsync policy (default SpoolSyncAlways).
	Sync SpoolSync
	// SyncEvery is the SpoolSyncInterval cadence (default 50ms).
	SyncEvery time.Duration
	// WriteFault and SyncFault are fault-injection seams: when non-nil
	// and returning an error, the corresponding file operation fails
	// with it before touching the disk. Wired to internal/faultinject by
	// the crash gate; nil in production.
	WriteFault func(n int) error
	SyncFault  func() error
}

// SpoolRecovery reports what opening a spool had to repair.
type SpoolRecovery struct {
	// Frames is the count of valid frames found.
	Frames uint64
	// TruncatedBytes is how much torn or corrupt tail was cut away.
	TruncatedBytes int64
	// DroppedSegments counts whole segments discarded because an earlier
	// segment's corruption ended the valid prefix before them.
	DroppedSegments int
}

// Spool is a segmented append-only frame log. All methods are safe for
// concurrent use.
type Spool struct {
	dir  string
	opts SpoolOpts

	mu       sync.Mutex
	f        *os.File
	seg      int   // active segment index
	size     int64 // active segment size
	frames   uint64
	lastSync time.Time
	broken   error // a failed append poisons the spool until reopened
	closed   bool
	recov    SpoolRecovery
}

func segName(i int) string { return fmt.Sprintf("wal-%06d.seg", i) }

// OpenSpool opens (creating if needed) the spool in dir, repairing any
// torn tail left by a crash: the last valid frame boundary becomes the
// new end of the log, and anything after it — a half-written frame, a
// CRC mismatch, segments past a corrupt one — is truncated or dropped.
func OpenSpool(dir string, opts SpoolOpts) (*Spool, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 4 << 20
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 50 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	s := &Spool{dir: dir, opts: opts}

	// Scan the segments in order. The valid prefix ends at the first
	// corruption; the segment holding it is truncated back to its last
	// whole frame and every later segment is dropped.
	end := len(segs)
	for i, seg := range segs {
		valid, frames, total, err := scanSegment(filepath.Join(dir, segName(seg)))
		if err != nil {
			return nil, err
		}
		s.frames += frames
		if valid < total {
			s.recov.TruncatedBytes += total - valid
			if err := os.Truncate(filepath.Join(dir, segName(seg)), valid); err != nil {
				return nil, fmt.Errorf("trace: spool repair: %w", err)
			}
			end = i + 1
			break
		}
	}
	for _, seg := range segs[end:] {
		if err := os.Remove(filepath.Join(dir, segName(seg))); err != nil {
			return nil, fmt.Errorf("trace: spool repair: %w", err)
		}
		s.recov.DroppedSegments++
	}
	segs = segs[:end]
	s.recov.Frames = s.frames

	// Open the last surviving segment for append, or start the first.
	if len(segs) == 0 {
		if err := s.newSegmentLocked(1); err != nil {
			return nil, err
		}
	} else {
		last := segs[len(segs)-1]
		path := filepath.Join(dir, segName(last))
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		if st.Size() < int64(walHeaderSize) {
			// A segment torn inside its own header holds nothing; rewrite
			// it as fresh.
			f.Close()
			if err := os.Remove(path); err != nil {
				return nil, err
			}
			if err := s.newSegmentLocked(last); err != nil {
				return nil, err
			}
		} else {
			s.f, s.seg, s.size = f, last, st.Size()
		}
	}
	if err := syncDir(dir); err != nil {
		s.f.Close()
		return nil, err
	}
	return s, nil
}

// listSegments returns the segment indices present in dir, ascending.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range entries {
		var i int
		if _, err := fmt.Sscanf(e.Name(), "wal-%06d.seg", &i); err == nil && segName(i) == e.Name() {
			segs = append(segs, i)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// scanSegment walks one segment and returns the offset of its last valid
// frame boundary, the frame count up to it, and the file's total size.
// Corruption is a verdict, not an error: only I/O failures error.
func scanSegment(path string) (valid int64, frames uint64, total int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, 0, 0, err
	}
	total = st.Size()

	head := make([]byte, walHeaderSize)
	if _, err := io.ReadFull(f, head); err != nil || string(head[:len(walMagic)]) != walMagic || head[len(walMagic)] != walVersion {
		return 0, 0, total, nil // torn or foreign header: nothing valid
	}
	valid = int64(walHeaderSize)
	var hdr [walFrameHeader]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return valid, frames, total, nil // clean end or torn header
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n > MaxFramePayload {
			return valid, frames, total, nil
		}
		if uint32(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			return valid, frames, total, nil // torn payload
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return valid, frames, total, nil // corrupt payload
		}
		valid += walFrameHeader + int64(n)
		frames++
	}
}

// newSegmentLocked creates and syncs segment i and makes it active.
func (s *Spool) newSegmentLocked(i int) error {
	f, err := os.OpenFile(filepath.Join(s.dir, segName(i)), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	hdr := append([]byte(walMagic), walVersion)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.f, s.seg, s.size = f, i, int64(walHeaderSize)
	return nil
}

// Recovered reports what OpenSpool repaired.
func (s *Spool) Recovered() SpoolRecovery { return s.recov }

// Dir returns the spool directory.
func (s *Spool) Dir() string { return s.dir }

// FrameCount returns how many valid frames the spool holds.
func (s *Spool) FrameCount() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frames
}

// Append writes one frame and applies the sync policy. An error —
// injected or real — leaves the on-disk log at a whole-frame boundary
// when the partial write can be truncated away, and poisons the spool
// otherwise; either way the frame is reported lost so the caller can
// account for it.
func (s *Spool) Append(payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("trace: spool frame %d exceeds limit %d", len(payload), MaxFramePayload)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("trace: spool is closed")
	}
	if s.broken != nil {
		return fmt.Errorf("trace: spool is poisoned by an earlier failure: %w", s.broken)
	}

	frame := int64(walFrameHeader + len(payload))
	if s.size+frame > s.opts.SegmentBytes && s.size > int64(walHeaderSize) {
		// Seal the active segment (always synced, whatever the policy:
		// rotation is rare and a sealed segment should be whole) and
		// rotate.
		if err := s.syncLocked(); err != nil {
			s.broken = err
			return err
		}
		if err := s.f.Close(); err != nil {
			s.broken = err
			return err
		}
		if err := s.newSegmentLocked(s.seg + 1); err != nil {
			s.broken = err
			return err
		}
	}

	var hdr [walFrameHeader]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, crcTable))
	buf := make([]byte, 0, frame)
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)

	if err := s.writeLocked(buf); err != nil {
		// Cut the torn tail immediately so the spool stays valid for
		// whatever can still read it; if even that fails, poison.
		if terr := s.f.Truncate(s.size); terr != nil {
			s.broken = terr
		}
		return err
	}
	s.size += frame
	s.frames++

	switch s.opts.Sync {
	case SpoolSyncAlways:
		if err := s.syncLocked(); err != nil {
			return err
		}
	case SpoolSyncInterval:
		if time.Since(s.lastSync) >= s.opts.SyncEvery {
			if err := s.syncLocked(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Spool) writeLocked(buf []byte) error {
	if s.opts.WriteFault != nil {
		if err := s.opts.WriteFault(len(buf)); err != nil {
			return fmt.Errorf("trace: spool write: %w", err)
		}
	}
	_, err := s.f.Write(buf)
	return err
}

func (s *Spool) syncLocked() error {
	if s.opts.SyncFault != nil {
		if err := s.opts.SyncFault(); err != nil {
			return fmt.Errorf("trace: spool sync: %w", err)
		}
	}
	if err := s.f.Sync(); err != nil {
		return err
	}
	s.lastSync = time.Now()
	return nil
}

// Sync forces the active segment to stable storage.
func (s *Spool) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return s.syncLocked()
}

// Close syncs and closes the active segment. The spool stays readable on
// disk; reopen it with OpenSpool.
func (s *Spool) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.syncLocked()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Range calls fn for every valid frame payload in append order, reading
// back from the segment files. It stops early when fn errors. Appends
// are held off for the duration.
func (s *Spool) Range(fn func(payload []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	segs, err := listSegments(s.dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if err := rangeSegment(filepath.Join(s.dir, segName(seg)), fn); err != nil {
			return err
		}
	}
	return nil
}

// rangeSegment streams one segment's valid frames into fn, stopping
// silently at the first invalid frame (Open already repaired the tail;
// this tolerates a reader racing a not-yet-synced writer).
func rangeSegment(path string, fn func(payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	head := make([]byte, walHeaderSize)
	if _, err := io.ReadFull(f, head); err != nil || string(head[:len(walMagic)]) != walMagic {
		return nil
	}
	var hdr [walFrameHeader]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return nil
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if n > MaxFramePayload {
			return nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil
		}
		if crc32.Checksum(payload, crcTable) != crc {
			return nil
		}
		if err := fn(payload); err != nil {
			return err
		}
	}
}

// syncDir fsyncs a directory so file creations/removals inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ReadSpool opens (repairing) a trace spool written by SpoolWriter and
// merges its delta traces into one Seq-ordered trace — the recovery
// entry point tesla-trace uses to treat a spool directory like a trace
// file. The merged Dropped total sums every delta's explicit losses.
func ReadSpool(dir string) (*Trace, error) {
	sp, err := OpenSpool(dir, SpoolOpts{Sync: SpoolSyncNone})
	if err != nil {
		return nil, err
	}
	defer sp.Close()
	t := &Trace{FormatVersion: Version}
	first := true
	err = sp.Range(func(payload []byte) error {
		delta, err := Read(bytes.NewReader(payload))
		if err != nil {
			return fmt.Errorf("trace: spool frame: %w", err)
		}
		if first {
			t.Automata = delta.Automata
			first = false
		}
		t.Dropped += delta.Dropped
		t.Events = append(t.Events, delta.Events...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if first {
		return nil, fmt.Errorf("trace: spool %s holds no recoverable frames", dir)
	}
	sort.SliceStable(t.Events, func(i, j int) bool { return t.Events[i].Seq < t.Events[j].Seq })
	return t, nil
}

// SpoolWriter streams a live Recorder into a Spool as delta traces: each
// flush cuts exactly the events recorded since the previous flush
// (Recorder.CutSince) and appends their binary encoding as one WAL
// frame. Under SpoolSyncAlways a SIGKILL loses at most the events not
// yet appended: one flush interval, plus whatever accumulated while an
// in-flight flush was still encoding (on a saturated machine flushes
// batch up their backlog rather than fall behind silently). Everything
// older is durable, and ReadSpool recovers it as a verbatim prefix of
// the run — exact as long as the recorder rings did not overwrite
// between cuts; overwrites are counted in each delta's Dropped, never
// lost silently.
type SpoolWriter struct {
	rec   *Recorder
	spool *Spool

	mu  sync.Mutex
	cut *Cut
	// lostFrames/lostEvents count deltas a failed append discarded —
	// explicit loss accounting in the PR 5 tradition (the events are
	// gone from the spool, never silently).
	lostFrames uint64
	lostEvents uint64

	stop chan struct{}
	done chan struct{}
}

// NewSpoolWriter pairs a recorder with a spool.
func NewSpoolWriter(rec *Recorder, spool *Spool) *SpoolWriter {
	return &SpoolWriter{rec: rec, spool: spool}
}

// Flush cuts and appends the delta since the last flush. Empty deltas
// append nothing.
func (w *SpoolWriter) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	tr, next := w.rec.CutSince(w.cut)
	w.cut = next
	if len(tr.Events) == 0 && tr.Dropped == 0 {
		return nil
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		w.lostFrames++
		w.lostEvents += uint64(len(tr.Events))
		return err
	}
	if err := w.spool.Append(buf.Bytes()); err != nil {
		w.lostFrames++
		w.lostEvents += uint64(len(tr.Events))
		return err
	}
	return nil
}

// Lost reports deltas discarded by failed appends.
func (w *SpoolWriter) Lost() (frames, events uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lostFrames, w.lostEvents
}

// Start flushes on an interval until Stop.
func (w *SpoolWriter) Start(interval time.Duration) {
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go func() {
		defer close(w.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w.Flush()
			case <-w.stop:
				return
			}
		}
	}()
}

// Stop ends the interval flusher (if started) and performs a final
// flush, so a cleanly-exiting run's spool is complete.
func (w *SpoolWriter) Stop() error {
	if w.stop != nil {
		close(w.stop)
		<-w.done
	}
	return w.Flush()
}
