// Package agg is the fleet side of the TESLA runtime: an ingestion
// service that merges the per-process trace streams and health counters
// of thousands of monitored processes into one queryable store. Producers
// (tesla-run -agg) stream delta traces in the versioned binary codec over
// TCP or a unix socket; the server aggregates them per (process, class,
// site), reservoir-samples the event windows leading into failures at hot
// sites, and answers "which assertion failed where, fleet-wide" —
// dtrace.Summarize scaled from one trace to a fleet, in the stream-
// processing style of TeSSLa: merge the per-source event streams, then
// aggregate, instead of inspecting processes one at a time.
//
// Degradation follows the PR 5 contract end to end: every queue is
// bounded, every drop is counted on the side that dropped it, and a
// producer that lost anything exits 3 (degraded), never reporting a
// silent success.
package agg

import (
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"tesla/internal/core"
	"tesla/internal/trace"
)

// Magic opens every connection, before the first frame.
const Magic = "TESLAAGG"

// ProtoVersion is the wire-protocol version spoken by this package. The
// hello frame carries it together with the trace-codec version; a proto
// outside [MinProtoVersion, ProtoVersion] or a codec mismatch rejects
// the connection at the handshake — an old producer is turned away with
// a diagnostic naming both sides, not cut off mid-stream with a codec
// error.
//
// v2 added the durability plane: sequenced trace frames (FrameSeqTrace),
// server acks (FrameAck) and the HelloAck resume watermark. v1 producers
// are still accepted — their unsequenced frames are ingested as before,
// without dedup, so only v2 producers get exactly-once accounting across
// crashes.
const ProtoVersion = 2

// MinProtoVersion is the oldest protocol the server still accepts.
const MinProtoVersion = 1

// Frame kinds of the wire protocol. The framing itself (kind byte,
// uvarint length, payload) is trace.FrameWriter/FrameReader; this is the
// schema above it. Control payloads are JSON (small, debuggable); trace
// payloads are an event-count uvarint followed by a complete binary trace
// encoding, so a dropped frame can be accounted in events without
// decoding it.
const (
	// FrameHello is the producer's first frame: a Hello payload.
	FrameHello = 1
	// FrameTrace is one delta trace: uvarint event count, then the
	// binary codec bytes.
	FrameTrace = 2
	// FrameHealth is a []HealthRow JSON payload: the producer's merged
	// monitor health counters (cumulative; the server keeps the latest).
	FrameHealth = 3
	// FrameBye is the producer's final accounting, a Bye payload. Its
	// presence distinguishes a clean close from a mid-stream disconnect.
	FrameBye = 4
	// FrameHelloAck is the server's reply to FrameHello.
	FrameHelloAck = 5
	// FrameQuery is a query-role client's request, a Query payload.
	FrameQuery = 6
	// FrameResult is the server's JSON answer to a FrameQuery.
	FrameResult = 7
	// FrameSeqTrace (proto v2) is one sequenced delta trace: uvarint
	// frame sequence number, then the FrameTrace payload (uvarint event
	// count + binary codec bytes). Sequence numbers are monotonic per
	// producer process across connections and restarts, so the server can
	// deduplicate resent frames and acknowledge durable prefixes.
	FrameSeqTrace = 8
	// FrameAck (proto v2, server→producer) carries the producer's
	// acknowledged sequence watermark as an Ack payload: every frame with
	// seq <= Ack.Seq is applied (and, when the server snapshots, durable)
	// and may be pruned from the client's resend set and spool.
	FrameAck = 9
)

// Ack is the FrameAck payload.
type Ack struct {
	Seq uint64 `json:"seq"`
}

// Hello identifies a connecting client and the versions it speaks.
type Hello struct {
	Proto int `json:"proto"`
	// Codec is the trace-codec version the producer encodes with
	// (trace.Version of its build).
	Codec int `json:"codec"`
	// Tool names the producing program ("tesla-run", "tesla-bench").
	Tool string `json:"tool"`
	// Process identifies the monitored process fleet-wide.
	Process string `json:"process"`
	// Query marks a query-role connection: no producer accounting is
	// created for it.
	Query bool `json:"query,omitempty"`
}

// HelloAck is the server's handshake verdict.
type HelloAck struct {
	OK      bool   `json:"ok"`
	Message string `json:"message,omitempty"`
	Proto   int    `json:"proto"`
	Codec   int    `json:"codec"`
	// Ack (proto v2) is the producer's acknowledged sequence watermark at
	// handshake time — a reconnecting or resuming producer prunes its
	// resend set to seq > Ack before sending anything.
	Ack uint64 `json:"ack,omitempty"`
}

// Bye is the producer's final self-accounting. SentFrames/SentEvents
// count what actually entered the connection; ClientDropped* count what
// the producer's bounded send buffer or exhausted retries discarded, and
// RingDropped what its trace rings overwrote before a flush. The exact-
// accounting invariant the load harness asserts is
//
//	server.ingested + server.dropped == bye.SentEvents
//
// per clean producer, with the client- and ring-side losses reported
// alongside, so fleet numbers always sum.
type Bye struct {
	SentFrames          uint64 `json:"sentFrames"`
	SentEvents          uint64 `json:"sentEvents"`
	ClientDroppedFrames uint64 `json:"clientDroppedFrames"`
	ClientDroppedEvents uint64 `json:"clientDroppedEvents"`
	RingDropped         uint64 `json:"ringDropped"`
}

// HealthRow is one class's health counters as shipped by a producer —
// core.ClassHealth flattened into a stable JSON schema.
type HealthRow struct {
	Class         string `json:"class"`
	Quarantined   bool   `json:"quarantined,omitempty"`
	Live          int    `json:"live"`
	Violations    uint64 `json:"violations"`
	Overflows     uint64 `json:"overflows"`
	Evictions     uint64 `json:"evictions"`
	Suppressed    uint64 `json:"suppressed"`
	Quarantines   uint64 `json:"quarantines"`
	HandlerPanics uint64 `json:"handlerPanics"`
}

// HealthRows converts a monitor health report to the wire schema.
func HealthRows(hs []core.ClassHealth) []HealthRow {
	out := make([]HealthRow, 0, len(hs))
	for _, ch := range hs {
		out = append(out, HealthRow{
			Class:         ch.Class,
			Quarantined:   ch.Quarantined,
			Live:          ch.Live,
			Violations:    ch.Violations,
			Overflows:     ch.Overflows,
			Evictions:     ch.Evictions,
			Suppressed:    ch.Suppressed,
			Quarantines:   ch.Quarantines,
			HandlerPanics: ch.HandlerPanics,
		})
	}
	return out
}

// Query is a query-role request.
type Query struct {
	// Q selects the report: "fleet", "failures", "topk", "samples" or
	// "health".
	Q     string `json:"q"`
	Class string `json:"class,omitempty"`
	K     int    `json:"k,omitempty"`
}

// rejectHello renders the handshake rejection for a version mismatch:
// actionable, naming the producing tool and both sides' versions.
func rejectHello(h Hello) string {
	return fmt.Sprintf(
		"%s (process %q) speaks proto v%d / trace codec v%d; this tesla-agg accepts proto v%d-v%d / codec v%d — upgrade whichever side is older",
		orUnknown(h.Tool), h.Process, h.Proto, h.Codec, MinProtoVersion, ProtoVersion, trace.Version)
}

// EncodeSeqTrace prefixes a FrameTrace payload (event count + binary
// trace) with its sequence number, producing a FrameSeqTrace payload.
// The result is also exactly what the client write-ahead-logs to its
// offline spool: spool frame == wire frame, so resume is a replay.
func EncodeSeqTrace(seq uint64, tracePayload []byte) []byte {
	var prefix [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(prefix[:], seq)
	out := make([]byte, 0, n+len(tracePayload))
	out = append(out, prefix[:n]...)
	return append(out, tracePayload...)
}

// SeqTraceInfo splits a FrameSeqTrace payload into its sequence number,
// declared event count and the embedded FrameTrace payload.
func SeqTraceInfo(payload []byte) (seq, events uint64, tracePayload []byte, err error) {
	seq, n := binary.Uvarint(payload)
	if n <= 0 || seq == 0 {
		return 0, 0, nil, fmt.Errorf("agg: sequenced trace frame missing its sequence prefix")
	}
	tracePayload = payload[n:]
	events, n = binary.Uvarint(tracePayload)
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("agg: sequenced trace frame missing its event-count prefix")
	}
	return seq, events, tracePayload, nil
}

func orUnknown(tool string) string {
	if tool == "" {
		return "unknown tool"
	}
	return tool
}

// Network addresses: "unix:/path" (or any string containing a path
// separator) selects a unix socket; everything else is TCP host:port.

// SplitAddr maps an address spelling to a (network, address) pair for
// net.Dial / net.Listen.
func SplitAddr(addr string) (network, address string) {
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		return "unix", rest
	}
	if strings.ContainsAny(addr, "/") {
		return "unix", addr
	}
	return "tcp", addr
}

// Listen opens the server socket for an address spelling. A stale unix
// socket file — the residue of a SIGKILLed server, which never unlinks
// its path — is reclaimed, but only after a probe dial confirms nothing
// is accepting on it: a crashed server must be restartable on the same
// address without an operator rm, while a live server's socket is never
// stolen.
func Listen(addr string) (net.Listener, error) {
	network, address := SplitAddr(addr)
	ln, err := net.Listen(network, address)
	if err == nil || network != "unix" {
		return ln, err
	}
	probe, perr := net.DialTimeout(network, address, time.Second)
	if perr == nil {
		probe.Close() // someone is alive on it: surface the original error
		return nil, err
	}
	if rmErr := os.Remove(address); rmErr != nil {
		return nil, err
	}
	return net.Listen(network, address)
}
