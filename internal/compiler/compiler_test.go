package compiler

import (
	"strings"
	"testing"

	"tesla/internal/csub"
	"tesla/internal/ir"
)

func ctxFor(t *testing.T, srcs map[string]string) (*Context, []*csub.File) {
	t.Helper()
	var files []*csub.File
	for name, src := range srcs {
		f, err := csub.Parse(name, src)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	ctx, err := NewContext(files...)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, files
}

func TestContextRejectsDuplicates(t *testing.T) {
	a, _ := csub.Parse("a.c", `int f() { return 0; }`)
	b, _ := csub.Parse("b.c", `int f() { return 1; }`)
	if _, err := NewContext(a, b); err == nil {
		t.Fatal("duplicate function must fail")
	}
	a2, _ := csub.Parse("a.c", `struct s { int v; };`)
	b2, _ := csub.Parse("b.c", `struct s { int v; };`)
	if _, err := NewContext(a2, b2); err == nil {
		t.Fatal("duplicate struct must fail")
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`int f() { x = 1; return 0; }`, "undeclared variable"},
		{`int f(int a) { return a->field; }`, "non-pointer"},
		{`struct s { int v; }; int f(struct s *p) { return p->nope; }`, "no field"},
		{`int f(struct missing *p) { return p->v; }`, "unknown struct"},
		{`int f() { struct gone *p = alloc(gone); return 0; }`, "unknown struct"},
		{`int f(int vp) { TESLA_SYSCALL_PREVIOUSLY(check(other) == 0); return 0; }`, "not in scope"},
		{`int f(int vp) { TESLA_SYSCALL_PREVIOUSLY(bogus grammar); return 0; }`, "spec"},
	}
	for i, c := range cases {
		f, err := csub.Parse("e.c", c.src)
		if err != nil {
			t.Fatalf("case %d parse: %v", i, err)
		}
		ctx, err := NewContext(f)
		if err != nil {
			t.Fatalf("case %d ctx: %v", i, err)
		}
		_, err = CompileFile(f, ctx)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: err = %v, want %q", i, err, c.want)
		}
	}
}

func TestParamsSpilledToAllocas(t *testing.T) {
	ctx, files := ctxFor(t, map[string]string{"p.c": `
int f(int a, int b) {
	a = a + b;
	return a;
}`})
	u, err := CompileFile(files[0], ctx)
	if err != nil {
		t.Fatal(err)
	}
	f := u.Module.Func("f")
	if f.NParams != 2 {
		t.Fatalf("NParams = %d", f.NParams)
	}
	// clang -O0 shape: one alloca+store per parameter at entry.
	allocas, stores := 0, 0
	for _, in := range f.Blocks[0].Instrs[:4] {
		switch in.Op {
		case ir.OpAlloca:
			allocas++
		case ir.OpStore:
			stores++
		}
	}
	if allocas != 2 || stores != 2 {
		t.Fatalf("entry shape: %d allocas, %d stores\n%s", allocas, stores, f.String())
	}
}

func TestFieldStoreCarriesAssignKind(t *testing.T) {
	ctx, files := ctxFor(t, map[string]string{"p.c": `
struct s { int n; };
int f(struct s *p) {
	p->n = 1;
	p->n += 2;
	p->n++;
	return 0;
}`})
	u, err := CompileFile(files[0], ctx)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []ir.AssignKind
	for _, b := range u.Module.Func("f").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpFieldStore {
				kinds = append(kinds, in.Assign)
			}
		}
	}
	want := []ir.AssignKind{ir.AssignSet, ir.AssignAdd, ir.AssignIncr}
	if len(kinds) != 3 || kinds[0] != want[0] || kinds[1] != want[1] || kinds[2] != want[2] {
		t.Fatalf("assign kinds = %v", kinds)
	}
}

func TestAssertionEnvResolution(t *testing.T) {
	// #defines resolve to constants; struct-typed scope vars resolve field
	// events; the site pseudo-call carries scope values in Vars order.
	ctx, files := ctxFor(t, map[string]string{"p.c": `
#define LIMIT 64
struct q { int depth; };
int f(struct q *qq, int n) {
	TESLA_SYSCALL(eventually(qq.depth = LIMIT));
	qq->depth = LIMIT;
	return n;
}`})
	u, err := CompileFile(files[0], ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Assertions) != 1 {
		t.Fatalf("assertions = %d", len(u.Assertions))
	}
	text := u.Assertions[0].String()
	if !strings.Contains(text, "q::qq.depth = 64") {
		t.Fatalf("assertion text = %q", text)
	}
	// The site pseudo-call exists and passes one scope value (qq).
	found := false
	for _, b := range u.Module.Func("f").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall && strings.HasPrefix(in.Sym, SitePseudoFn) {
				found = true
				if len(in.Args) != 1 {
					t.Fatalf("site args = %d", len(in.Args))
				}
			}
		}
	}
	if !found {
		t.Fatal("site pseudo-call missing")
	}
}

func TestShadowedFunctionNameCallsThroughVariable(t *testing.T) {
	// A local variable shadowing a function name produces an indirect call.
	ctx, files := ctxFor(t, map[string]string{"p.c": `
int target(int x) { return x + 1; }
int f(int n) {
	int target = 5;
	int r = target + n;
	return r;
}`})
	if _, err := CompileFile(files[0], ctx); err != nil {
		t.Fatal(err)
	}
}

func TestCompileLinksProgram(t *testing.T) {
	units, prog, err := Compile(map[string]string{
		"a.c": `int f(int x) { return g(x) + 1; }`,
		"b.c": `int g(int x) { return x * 2; }`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 || len(prog.Funcs) != 2 {
		t.Fatalf("units=%d funcs=%d", len(units), len(prog.Funcs))
	}
}
