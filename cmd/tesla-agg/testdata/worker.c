/*
 * A long-running, always-passing worker for the crash gate. Each
 * iteration runs one step() activation: the automaton instance is born
 * at call(step), satisfied by the check-then-use sequence, and dies at
 * returnfrom(step), so the instance table stays tiny no matter how long
 * the loop runs. The only interesting thing about this program is how
 * it dies: the kill harness SIGKILLs it at random points and asserts
 * that whatever reached the trace spool is a verbatim prefix of an
 * uninterrupted run's trace.
 */

int security_check(int x) {
	return 0;
}

int do_work(int x) {
	TESLA_WITHIN(step, previously(security_check(x)));
	return x;
}

/*
 * spin burns interpreter cycles without emitting trace events (plain
 * arithmetic is not instrumented), so the run lasts long enough to be
 * killed mid-flight while the event total stays under the default
 * per-thread ring — no overwrites, so the spool prefix is exact.
 */
int spin(int n) {
	while (n > 0) {
		n = n - 1;
	}
	return 0;
}

int step(int x) {
	security_check(x);
	do_work(x);
	spin(5000);
	return 0;
}

int main(int n) {
	int i = 0;
	while (i < n) {
		step(i);
		i = i + 1;
	}
	return 0;
}
