package monitor

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/spec"
)

// Options configures a Monitor.
type Options struct {
	// Handler receives lifecycle notifications (nil = discard).
	Handler core.Handler
	// Tap observes raw program events per thread (nil = no tracing).
	// Threads pay one nil check per event when no tap is installed.
	Tap Tap
	// Memory resolves indirect (&x) patterns (nil = raw values).
	Memory Memory
	// FailFast propagates the first violation as an error from the
	// Thread event methods (TESLA's default fail-stop behaviour).
	FailFast bool
	// Naive disables the lazy-initialisation optimisation: every bound
	// event does work on every automaton sharing that bound, the
	// behaviour whose cost figure 13 quantifies. The optimised (default)
	// mode keeps a per-context record of common initialisation and
	// cleanup events and initialises instances lazily when they receive
	// their first non-initialisation event (§5.2.2).
	Naive bool
	// GlobalShards selects the global store's lock-stripe count, passed
	// through to core.StoreOpts.Shards: 0 sizes the sharded store to
	// GOMAXPROCS, 1 selects the single-mutex reference store, ≥2 forces a
	// stripe count. Per-thread stores are unaffected.
	GlobalShards int
	// NoEngine pins every store (global and per-thread) to the interpreted
	// table-driven walk instead of the compiled transition engines lowered
	// from the automata (core.StoreOpts.NoEngine). The interpreted walk is
	// the executable differential reference the engine parity harness and
	// the compile figure's baseline rung run on; production monitors leave
	// this off.
	NoEngine bool
	// BatchSize enables the batched per-thread event plane (batch.go):
	// each Thread stages up to this many program events in a ring and
	// applies them to the stores in runs, amortising stripe locking and
	// index lookups. 0 keeps the synchronous path — one store round-trip
	// per event — which is also the executable differential reference the
	// parity harness compares batched runs against. Verdict-observing
	// operations (Health, Drain, fail-stop verdict symbols, trace cuts)
	// force a flush, so observable verdicts are identical in both modes.
	BatchSize int

	// Failure is the store-default failure action for classes that leave
	// Class.Failure at FailDefault (§4.4.2's panic/printf spectrum). The
	// zero value defers to FailFast: stop when set, report otherwise.
	Failure core.FailureAction
	// Overflow is the store-default degradation policy applied when a
	// class's instance table is full and Class.Overflow is OverflowDefault.
	Overflow core.OverflowPolicy
	// QuarantineAfter, RearmEvents and RearmAfter tune QuarantineClass for
	// classes that don't set their own thresholds (0 = core defaults).
	QuarantineAfter int
	RearmEvents     int
	RearmAfter      time.Duration
	// HandlerPanicLimit quarantines the Handler after this many recovered
	// panics (0 = core default).
	HandlerPanicLimit int
	// AllocFail, when set, is consulted before every instance allocation
	// and forces an allocation failure when it returns true — the
	// fault-injection seam (internal/faultinject). Nil in production.
	AllocFail func(cls *core.Class) bool
}

// storeOpts translates the monitor options into core store options for the
// given context.
func (o Options) storeOpts(ctx core.Context, shards int) core.StoreOpts {
	return core.StoreOpts{
		Context:           ctx,
		Handler:           o.Handler,
		Shards:            shards,
		NoEngine:          o.NoEngine,
		Failure:           o.Failure,
		Overflow:          o.Overflow,
		QuarantineAfter:   o.QuarantineAfter,
		RearmEvents:       o.RearmEvents,
		RearmAfter:        o.RearmAfter,
		HandlerPanicLimit: o.HandlerPanicLimit,
		AllocFail:         o.AllocFail,
	}
}

// symRef locates one symbol of one automaton.
type symRef struct {
	idx int // automaton index
	sym *automata.Symbol
}

// Monitor owns the compiled automata, their shared global store and the
// event-dispatch indexes. Create threads with NewThread; each simulated
// thread of the monitored program must use its own Thread.
type Monitor struct {
	opts   Options
	autos  []*automata.Automaton
	global *core.Store

	callIdx   map[string][]symRef
	retIdx    map[string][]symRef
	msgIdx    map[string][]symRef
	msgRetIdx map[string][]symRef
	fieldIdx  map[string][]symRef
	siteIdx   map[string]symRef

	// plans[idx][symID] is automaton idx's compiled engine plan for that
	// symbol (automata.StepEngine lowering): every dispatch path routes
	// events through these, and the stores fall back to the interpreted
	// walk when built with Options.NoEngine.
	plans [][]*core.SymbolPlan

	// failStop records, per automaton, whether its class's effective
	// failure action is fail-stop — the batch plane drains through on
	// verdict-bearing ops of exactly these automata so their violation
	// errors surface at the causing event call.
	failStop []bool

	// boundSlot maps a Bound (begin/end event pair) to a dense index;
	// autoBound gives each automaton's bound slot. The four dispatch maps
	// say which slots begin/end on a given function's call or return.
	boundSlot map[string]int
	autoBound []int
	beginCall map[string][]int
	beginRet  map[string][]int
	endCall   map[string][]int
	endRet    map[string][]int

	// globalLazy tracks bound epochs for global-context automata,
	// guarded by muGlobal (the analogue of the store's explicit
	// synchronisation for the global context).
	muGlobal   sync.Mutex
	globalLazy lazyState

	// nextThread numbers threads for trace attribution.
	nextThread atomic.Int32

	// threads tracks every Thread's store so Health can merge per-thread
	// degradation counters with the global store's.
	threadsMu sync.Mutex
	threads   []*Thread
}

// lazyState is the per-context record of initialisation/cleanup events.
type lazyState struct {
	epoch     []uint64 // per bound slot; bumped at bound entry
	inBound   []bool   // per bound slot
	lastEpoch []uint64 // per automaton; epoch at which init materialised
	touched   [][]int  // per bound slot: automata initialised this epoch
}

func newLazyState(bounds, autos int) lazyState {
	return lazyState{
		epoch:     make([]uint64, bounds),
		inBound:   make([]bool, bounds),
		lastEpoch: make([]uint64, autos),
		touched:   make([][]int, bounds),
	}
}

// New creates a monitor for the given compiled automata.
func New(opts Options, autos ...*automata.Automaton) (*Monitor, error) {
	m := &Monitor{
		opts:      opts,
		global:    core.NewStoreOpts(opts.storeOpts(core.Global, opts.GlobalShards)),
		callIdx:   map[string][]symRef{},
		retIdx:    map[string][]symRef{},
		msgIdx:    map[string][]symRef{},
		msgRetIdx: map[string][]symRef{},
		fieldIdx:  map[string][]symRef{},
		siteIdx:   map[string]symRef{},
		boundSlot: map[string]int{},
		beginCall: map[string][]int{},
		beginRet:  map[string][]int{},
		endCall:   map[string][]int{},
		endRet:    map[string][]int{},
	}
	m.global.FailFast = opts.FailFast
	for _, a := range autos {
		if err := m.add(a); err != nil {
			return nil, err
		}
	}
	m.globalLazy = newLazyState(len(m.boundSlot), len(m.autos))
	return m, nil
}

// MustNew is New, panicking on error.
func MustNew(opts Options, autos ...*automata.Automaton) *Monitor {
	m, err := New(opts, autos...)
	if err != nil {
		panic(err)
	}
	return m
}

// BoundSlots assigns a dense slot index to each distinct bound (begin/end
// event pair) across the automata, in first-appearance order. Both the
// Monitor and the instrumenter derive slot numbers from this function, so
// compiled-in hook indices agree with the runtime.
func BoundSlots(autos []*automata.Automaton) map[string]int {
	slots := map[string]int{}
	for _, a := range autos {
		k := a.Spec.Bound.String()
		if _, ok := slots[k]; !ok {
			slots[k] = len(slots)
		}
	}
	return slots
}

func (m *Monitor) add(a *automata.Automaton) error {
	idx := len(m.autos)
	m.autos = append(m.autos, a)
	if _, dup := m.siteIdx[a.Name]; dup {
		return fmt.Errorf("monitor: duplicate automaton name %q", a.Name)
	}
	// Link-time engine lowering: reuses an engine the build graph attached,
	// else lowers here, once, so no event pays for plan construction.
	m.plans = append(m.plans, a.Engine().Plans)
	// Both contexts resolve failure actions against the same option
	// defaults and FailFast switch, so the global store answers for all.
	m.failStop = append(m.failStop, m.global.FailStopFor(a.Class))

	bound := a.Spec.Bound
	boundKey := bound.String()
	slot, ok := m.boundSlot[boundKey]
	if !ok {
		slot = len(m.boundSlot)
		m.boundSlot[boundKey] = slot
		if bound.Begin.Kind == spec.StaticCall {
			m.beginCall[bound.Begin.Fn] = append(m.beginCall[bound.Begin.Fn], slot)
		} else {
			m.beginRet[bound.Begin.Fn] = append(m.beginRet[bound.Begin.Fn], slot)
		}
		if bound.End.Kind == spec.StaticCall {
			m.endCall[bound.End.Fn] = append(m.endCall[bound.End.Fn], slot)
		} else {
			m.endRet[bound.End.Fn] = append(m.endRet[bound.End.Fn], slot)
		}
	}
	m.autoBound = append(m.autoBound, slot)

	for _, s := range a.Symbols {
		ref := symRef{idx: idx, sym: s}
		switch s.Kind {
		case automata.KindBoundBegin, automata.KindBoundEnd, automata.KindInCallStack:
			// Bound events dispatch via the bound slot; incallstack
			// is synthesised at the assertion site.
		case automata.KindSite:
			m.siteIdx[a.Name] = ref
		case automata.KindFuncEntry:
			if s.ObjC {
				m.msgIdx[s.Fn] = append(m.msgIdx[s.Fn], ref)
			} else {
				m.callIdx[s.Fn] = append(m.callIdx[s.Fn], ref)
			}
		case automata.KindFuncExit:
			if s.ObjC {
				m.msgRetIdx[s.Fn] = append(m.msgRetIdx[s.Fn], ref)
			} else {
				m.retIdx[s.Fn] = append(m.retIdx[s.Fn], ref)
			}
		case automata.KindFieldAssign:
			k := s.Struct + "." + s.Field
			m.fieldIdx[k] = append(m.fieldIdx[k], ref)
		}
	}

	if a.Spec.Context == spec.Global {
		m.global.Register(a.Class)
	}
	return nil
}

// Automata returns the monitored automata.
func (m *Monitor) Automata() []*automata.Automaton { return m.autos }

// GlobalStore exposes the shared global-context store.
func (m *Monitor) GlobalStore() *core.Store { return m.global }

// InstrumentedFns reports every function name the monitor observes, for
// instrumenter planning and coverage reports.
func (m *Monitor) InstrumentedFns() map[string]bool {
	out := map[string]bool{}
	for fn := range m.callIdx {
		out[fn] = true
	}
	for fn := range m.retIdx {
		out[fn] = true
	}
	for _, idx := range []map[string][]int{m.beginCall, m.beginRet, m.endCall, m.endRet} {
		for fn := range idx {
			out[fn] = true
		}
	}
	return out
}

// Thread is one simulated thread's view of the monitor: its per-thread
// store, call stack and lazy-init bookkeeping. A Thread must not be used
// concurrently; cross-thread behaviour belongs to global-context automata.
type Thread struct {
	m     *Monitor
	id    int
	store *core.Store
	stack []string
	lazy  lazyState
	tap   ThreadTap
	btap  BatchThreadTap // tap's batch extension, when it implements one
	batch *batchState    // staging ring; nil in synchronous mode
	clock func() int64

	// StackQuery, when set, answers incallstack queries instead of the
	// thread's own call stack — the IR interpreter supplies its frame
	// stack here so only instrumented events need explicit hooks.
	StackQuery func(fn string) bool
}

// NewThread creates a thread context, registering every per-thread
// automaton class in a fresh per-thread store.
func (m *Monitor) NewThread() *Thread {
	th := &Thread{
		m:     m,
		id:    int(m.nextThread.Add(1)) - 1,
		store: core.NewStoreOpts(m.opts.storeOpts(core.PerThread, 1)),
		lazy:  newLazyState(len(m.boundSlot), len(m.autos)),
	}
	th.store.FailFast = m.opts.FailFast
	if m.opts.Tap != nil {
		th.tap = m.opts.Tap.ThreadTap(th.id)
	}
	if m.opts.BatchSize > 0 {
		th.batch = newBatchState(m.opts.BatchSize)
		if bt, ok := th.tap.(BatchThreadTap); ok {
			th.btap = bt
		}
	}
	for _, a := range m.autos {
		if a.Spec.Context != spec.Global {
			th.store.Register(a.Class)
		}
	}
	m.threadsMu.Lock()
	m.threads = append(m.threads, th)
	m.threadsMu.Unlock()
	return th
}

// Health merges degradation accounting across the global store and every
// per-thread store: one entry per class name, counters summed, Live totalled,
// Quarantined set if the class is quarantined in any store. Entries are
// ordered by first appearance (global first, then threads in creation order).
// Health is a required-site drain: batched threads flush their staged rings
// first, so the counters reflect every event delivered to the monitor.
// Deferred fail-stop errors surfaced by that drain are not returned here —
// they are already counted in the violation totals; use Drain to collect
// them.
func (m *Monitor) Health() []core.ClassHealth {
	m.Drain()
	m.threadsMu.Lock()
	stores := make([]*core.Store, 0, 1+len(m.threads))
	stores = append(stores, m.global)
	for _, th := range m.threads {
		stores = append(stores, th.store)
	}
	m.threadsMu.Unlock()

	idx := map[string]int{}
	var out []core.ClassHealth
	for _, s := range stores {
		for _, ch := range s.HealthReport() {
			i, ok := idx[ch.Class]
			if !ok {
				idx[ch.Class] = len(out)
				out = append(out, ch)
				continue
			}
			out[i].Live += ch.Live
			out[i].Quarantined = out[i].Quarantined || ch.Quarantined
			out[i].Health.Merge(ch.Health)
		}
	}
	return out
}

// Degraded reports whether any class in any store has degradation counters.
func (m *Monitor) Degraded() bool {
	for _, ch := range m.Health() {
		if ch.Degraded() {
			return true
		}
	}
	return false
}

// Store exposes the thread's per-thread store (introspection/tests).
func (th *Thread) Store() *core.Store { return th.store }

// ID is the thread's monitor-wide number (trace attribution).
func (th *Thread) ID() int { return th.id }

// SetClock installs a time source stamped onto tapped events; the VM
// supplies its step counter so trace records carry instruction time.
func (th *Thread) SetClock(f func() int64) { th.clock = f }

func (th *Thread) now() int64 {
	if th.clock != nil {
		return th.clock()
	}
	return 0
}

// storeFor picks the store an automaton's events go to.
func (th *Thread) storeFor(idx int) *core.Store {
	if th.m.autos[idx].Spec.Context == spec.Global {
		return th.m.global
	}
	return th.store
}

// lazyFor returns the lazy bookkeeping context for an automaton, plus the
// mutex guarding it (nil for per-thread automata).
func (th *Thread) lazyFor(idx int) (*lazyState, *sync.Mutex) {
	if th.m.autos[idx].Spec.Context == spec.Global {
		return &th.m.globalLazy, &th.m.muGlobal
	}
	return &th.lazy, nil
}

// emit routes one raw program event: synchronous mode taps it (nil-guarded,
// the zero-cost path); batched mode stages a ring entry for the event's
// matched ops to attach to. A full ring flushes first, which may surface a
// deferred fail-stop error — returned here for the entry point to report.
func (th *Thread) emit(ev ProgramEvent) error {
	if th.batch == nil {
		if th.tap != nil {
			th.tap.ProgramEvent(ev)
		}
		return nil
	}
	return th.stageEvent(ev)
}

// Call reports entry into fn with the given arguments: it drives «init»
// transitions for automata bounded by fn and entry-event symbols naming fn,
// and pushes fn onto the thread's call stack for incallstack patterns.
func (th *Thread) Call(fn string, args ...core.Value) error {
	first := th.emit(ProgramEvent{Kind: ProgCall, Time: th.now(), Fn: fn, Vals: args})
	th.stack = append(th.stack, fn)
	for _, slot := range th.m.beginCall[fn] {
		if err := th.boundBegin(slot); err != nil && first == nil {
			first = err
		}
	}
	for _, ref := range th.m.callIdx[fn] {
		if key, ok := matchFunc(ref.sym, args, 0, false, th.m.opts.Memory); ok {
			if err := th.deliver(ref, key); err != nil && first == nil {
				first = err
			}
		}
	}
	for _, slot := range th.m.endCall[fn] {
		if err := th.boundEnd(slot); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Return reports return from fn: exit-event symbols (which may constrain
// arguments and the return value) and «cleanup» for automata bounded by fn.
func (th *Thread) Return(fn string, ret core.Value, args ...core.Value) error {
	first := th.emit(ProgramEvent{Kind: ProgReturn, Time: th.now(), Fn: fn, Ret: ret, HasRet: true, Vals: args})
	for _, ref := range th.m.retIdx[fn] {
		if key, ok := matchFunc(ref.sym, args, ret, true, th.m.opts.Memory); ok {
			if err := th.deliver(ref, key); err != nil && first == nil {
				first = err
			}
		}
	}
	for _, slot := range th.m.endRet[fn] {
		if err := th.boundEnd(slot); err != nil && first == nil {
			first = err
		}
	}
	for _, slot := range th.m.beginRet[fn] {
		if err := th.boundBegin(slot); err != nil && first == nil {
			first = err
		}
	}
	if n := len(th.stack); n > 0 && th.stack[n-1] == fn {
		th.stack = th.stack[:n-1]
	}
	return first
}

// Send reports an Objective-C message send (selector with receiver).
func (th *Thread) Send(selector string, receiver core.Value, args ...core.Value) error {
	all := append([]core.Value{receiver}, args...)
	first := th.emit(ProgramEvent{Kind: ProgSend, Time: th.now(), Fn: selector, Vals: all})
	for _, ref := range th.m.msgIdx[selector] {
		if key, ok := matchFunc(ref.sym, all, 0, false, th.m.opts.Memory); ok {
			if err := th.deliver(ref, key); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// SendReturn reports the return of an Objective-C message.
func (th *Thread) SendReturn(selector string, ret core.Value, receiver core.Value, args ...core.Value) error {
	all := append([]core.Value{receiver}, args...)
	first := th.emit(ProgramEvent{Kind: ProgSendReturn, Time: th.now(), Fn: selector, Ret: ret, HasRet: true, Vals: all})
	for _, ref := range th.m.msgRetIdx[selector] {
		if key, ok := matchFunc(ref.sym, all, ret, true, th.m.opts.Memory); ok {
			if err := th.deliver(ref, key); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Assign reports a structure-field assignment.
func (th *Thread) Assign(structName, field string, target core.Value, op spec.AssignOp, value core.Value) error {
	first := th.emit(ProgramEvent{
		Kind: ProgAssign, Time: th.now(), Fn: structName, Field: field,
		Op: op, Vals: []core.Value{target, value},
	})
	for _, ref := range th.m.fieldIdx[structName+"."+field] {
		if key, ok := matchField(ref.sym, target, op, value, th.m.opts.Memory); ok {
			if err := th.deliver(ref, key); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Site reports execution reaching the named assertion's site, with the
// values of the assertion's scope variables in slot order. incallstack
// branches are evaluated against the thread's current call stack first.
func (th *Thread) Site(name string, vals ...core.Value) error {
	ref, ok := th.m.siteIdx[name]
	if !ok {
		return fmt.Errorf("monitor: unknown assertion site %q", name)
	}
	return th.site(ref.idx, vals)
}

// site resolves incallstack branches against the live call stack, emits the
// tap event carrying the resolved branch IDs (so replay needs no stack),
// then dispatches.
func (th *Thread) site(autoIdx int, vals []core.Value) error {
	auto := th.m.autos[autoIdx]
	var inStack []int
	for _, s := range auto.Symbols {
		if s.Kind == automata.KindInCallStack && th.InStack(s.Fn) {
			inStack = append(inStack, s.ID)
		}
	}
	first := th.emit(ProgramEvent{
		Kind: ProgSite, Time: th.now(), Fn: auto.Name,
		Auto: autoIdx, Vals: vals, InStack: inStack,
	})
	if err := th.siteResolved(autoIdx, inStack, vals); err != nil && first == nil {
		first = err
	}
	return first
}

// siteResolved dispatches a site event whose incallstack branches are
// already decided: inStack lists the symbol IDs that matched.
func (th *Thread) siteResolved(autoIdx int, inStack []int, vals []core.Value) error {
	auto := th.m.autos[autoIdx]
	var first error
	for _, id := range inStack {
		if id < 0 || id >= len(auto.Symbols) {
			return fmt.Errorf("monitor: symbol %d out of range for %s", id, auto.Name)
		}
		if err := th.deliver(symRef{idx: autoIdx, sym: auto.Symbols[id]}, core.AnyKey); err != nil && first == nil {
			first = err
		}
	}
	ref := symRef{idx: autoIdx, sym: auto.Site()}
	if err := th.deliver(ref, siteKey(auto, vals)); err != nil && first == nil {
		first = err
	}
	return first
}

// SiteResolved replays a recorded site event without consulting any call
// stack: the trace already captured which incallstack branches fired.
func (th *Thread) SiteResolved(autoIdx int, inStack []int, vals ...core.Value) error {
	if autoIdx < 0 || autoIdx >= len(th.m.autos) {
		return fmt.Errorf("monitor: automaton index %d out of range", autoIdx)
	}
	first := th.emit(ProgramEvent{
		Kind: ProgSite, Time: th.now(), Fn: th.m.autos[autoIdx].Name,
		Auto: autoIdx, Vals: vals, InStack: inStack,
	})
	if err := th.siteResolved(autoIdx, inStack, vals); err != nil && first == nil {
		first = err
	}
	return first
}

// InStack reports whether fn is on the thread's call stack.
func (th *Thread) InStack(fn string) bool {
	if th.StackQuery != nil {
		return th.StackQuery(fn)
	}
	for _, f := range th.stack {
		if f == fn {
			return true
		}
	}
	return false
}

// Deliver routes a pre-matched event — automaton autoIdx's symbol symID
// with the captured values in capture order — to the right store. This is
// the entry point for generated event translators (the IR instrumenter's
// hooks): their static checks have already passed, so only the key remains
// to be built.
func (th *Thread) Deliver(autoIdx, symID int, vals ...core.Value) error {
	if autoIdx < 0 || autoIdx >= len(th.m.autos) {
		return fmt.Errorf("monitor: automaton index %d out of range", autoIdx)
	}
	auto := th.m.autos[autoIdx]
	if symID < 0 || symID >= len(auto.Symbols) {
		return fmt.Errorf("monitor: symbol %d out of range for %s", symID, auto.Name)
	}
	first := th.emit(ProgramEvent{
		Kind: ProgDeliver, Time: th.now(), Fn: auto.Name,
		Auto: autoIdx, Sym: symID, Vals: vals,
	})
	sym := auto.Symbols[symID]
	key := core.AnyKey
	for i, c := range sym.Captures {
		if i < len(vals) {
			key = key.Set(c.Slot, vals[i])
		}
	}
	if err := th.deliver(symRef{idx: autoIdx, sym: sym}, key); err != nil && first == nil {
		first = err
	}
	return first
}

// SiteByIndex reports reaching automaton autoIdx's assertion site, firing
// incallstack branches first (as Site does by name).
func (th *Thread) SiteByIndex(autoIdx int, vals ...core.Value) error {
	if autoIdx < 0 || autoIdx >= len(th.m.autos) {
		return fmt.Errorf("monitor: automaton index %d out of range", autoIdx)
	}
	return th.site(autoIdx, vals)
}

// AutoIndex returns the index of the named automaton, or -1.
func (m *Monitor) AutoIndex(name string) int {
	for i, a := range m.autos {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// BoundBegin drives bound-slot entry directly (IR hook entry point).
func (th *Thread) BoundBegin(slot int) error {
	first := th.emit(ProgramEvent{Kind: ProgBoundBegin, Time: th.now(), Slot: slot})
	if err := th.boundBegin(slot); err != nil && first == nil {
		first = err
	}
	return first
}

// BoundEnd drives bound-slot exit directly (IR hook entry point).
func (th *Thread) BoundEnd(slot int) error {
	first := th.emit(ProgramEvent{Kind: ProgBoundEnd, Time: th.now(), Slot: slot})
	if err := th.boundEnd(slot); err != nil && first == nil {
		first = err
	}
	return first
}

// sendOp routes one matched (automaton, symbol, key) op to store through the
// automaton's compiled engine plan: staged with the plan attached in batched
// mode (the batch run applies it through the engine body), else driven
// synchronously via UpdateStatePlan. Stores built with Options.NoEngine fall
// back to the interpreted walk inside core, so dispatch is uniform here on
// both planes.
func (th *Thread) sendOp(store *core.Store, idx int, sym *automata.Symbol, key core.Key) error {
	auto := th.m.autos[idx]
	p := th.m.plans[idx][sym.ID]
	if th.batch != nil {
		return th.stageOp(store, core.BatchOp{Cls: auto.Class, Symbol: sym.Name, Flags: sym.Flags, Key: key, TS: auto.Trans[sym.ID], Plan: p}, th.opDrains(idx, sym.Flags, auto.Trans[sym.ID]))
	}
	return store.UpdateStatePlan(p, key)
}

// deliver routes a matched event to the automaton's store, materialising a
// lazy «init» first if needed.
func (th *Thread) deliver(ref symRef, key core.Key) error {
	auto := th.m.autos[ref.idx]
	store := th.storeFor(ref.idx)
	if !th.m.opts.Naive {
		ls, mu := th.lazyFor(ref.idx)
		if mu != nil {
			mu.Lock()
		}
		slot := th.m.autoBound[ref.idx]
		needInit := ls.inBound[slot] && ls.lastEpoch[ref.idx] != ls.epoch[slot]
		if needInit {
			ls.lastEpoch[ref.idx] = ls.epoch[slot]
			ls.touched[slot] = append(ls.touched[slot], ref.idx)
		}
		if mu != nil {
			mu.Unlock()
		}
		if needInit {
			// The lazy decision is made at stage time (under the same
			// bookkeeping lock as synchronous mode); in batched mode the
			// materialising «init» op stages in order before the event op
			// that triggered it.
			if err := th.sendOp(store, ref.idx, auto.BoundBegin(), core.AnyKey); err != nil {
				return err
			}
		}
	}
	return th.sendOp(store, ref.idx, ref.sym, key)
}

// boundBegin handles entry into a bound function. In naive mode every
// automaton sharing the bound does an «init» immediately; in optimised mode
// the context merely bumps the bound's epoch — O(1) regardless of how many
// automata share the bound.
func (th *Thread) boundBegin(slot int) error {
	var first error
	if th.m.opts.Naive {
		for idx, a := range th.m.autos {
			if th.m.autoBound[idx] != slot {
				continue
			}
			if err := th.sendOp(th.storeFor(idx), idx, a.BoundBegin(), core.AnyKey); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	bump := func(ls *lazyState) {
		ls.epoch[slot]++
		ls.inBound[slot] = true
	}
	bump(&th.lazy)
	th.m.muGlobal.Lock()
	bump(&th.m.globalLazy)
	th.m.muGlobal.Unlock()
	return nil
}

// boundEnd handles return from a bound function: «cleanup» on every
// automaton that is live in this bound (all of them in naive mode, only the
// touched ones in optimised mode).
func (th *Thread) boundEnd(slot int) error {
	var first error
	cleanup := func(idx int) {
		a := th.m.autos[idx]
		if err := th.sendOp(th.storeFor(idx), idx, a.BoundEnd(), core.AnyKey); err != nil && first == nil {
			first = err
		}
	}
	if th.m.opts.Naive {
		for idx := range th.m.autos {
			if th.m.autoBound[idx] == slot {
				cleanup(idx)
			}
		}
		return first
	}
	flush := func(ls *lazyState) []int {
		touched := ls.touched[slot]
		ls.touched[slot] = ls.touched[slot][:0]
		ls.inBound[slot] = false
		return touched
	}
	for _, idx := range flush(&th.lazy) {
		cleanup(idx)
	}
	th.m.muGlobal.Lock()
	globalTouched := append([]int(nil), flush(&th.m.globalLazy)...)
	th.m.muGlobal.Unlock()
	for _, idx := range globalTouched {
		cleanup(idx)
	}
	return first
}
