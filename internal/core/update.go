package core

// UpdateState drives one program event through an automaton class,
// implementing the instance lifecycle of §4.4.1:
//
//   - «init»: an event whose transition set carries TransInit creates a new
//     instance when no existing instance consumed the event.
//   - clone: an event that specialises a live instance's key (binds new
//     variables) forks a copy; the more general parent instance remains so
//     that other bindings can fork later.
//   - update: an event matching an instance's key and state moves it along.
//   - error: a required event (SymRequired, e.g. reaching the assertion
//     site) that no instance can accept is a violation, as is a strict
//     automaton instance observing an event its state cannot accept.
//   - «cleanup»: an event whose set carries TransCleanup finalises the
//     class; instances that cannot take a cleanup transition have unmet
//     obligations (eventually-style violations) and all instances are
//     expunged afterwards.
//
// symbol names the driving event for notification purposes. key carries the
// variable bindings the event provides. ts is the set of class transitions
// this event can drive, assembled statically by the event translator.
//
// Handler notifications are buffered during the critical section and
// dispatched after every lock is released (see supervise.go), so handlers
// may block, or even call back into the store, without stalling monitored
// threads.
//
// The returned error is non-nil only when the class's effective failure
// action is FailStop (FailDefault defers to Store.FailFast) and a violation
// or overflow occurred; the store's Handler is notified of every outcome
// regardless.
func (s *Store) UpdateState(cls *Class, symbol string, flags SymbolFlags, key Key, ts TransitionSet) error {
	if s.nshards > 0 {
		sc := s.shardedClassOf(cls)
		if sc == nil {
			// Implicit registration keeps one-off uses simple; hot
			// paths should Register up front so this branch never
			// runs.
			s.Register(cls)
			sc = s.shardedClassOf(cls)
		}
		return s.updateSharded(sc, symbol, flags, key, ts)
	}

	var nb noteBuf
	err := s.updateRef(cls, symbol, flags, key, ts, &nb)
	s.dispatch(&nb)
	return err
}

// refCand is one pre-event live instance in the reference store's candidate
// snapshot. The birth stamp detects a slot that was evicted and reused by
// this same event: the new occupant must not be driven by it.
type refCand struct {
	idx   int
	birth uint64
}

// updateRef is the reference (single-mutex) event body. Notifications are
// accumulated in nb for the caller to dispatch after the lock is released.
func (s *Store) updateRef(cls *Class, symbol string, flags SymbolFlags, key Key, ts TransitionSet, nb *noteBuf) error {
	s.lock()
	defer s.unlock()

	cs := s.classes[cls]
	if cs == nil {
		s.unlock()
		s.Register(cls)
		s.lock()
		cs = s.classes[cls]
	}
	return s.updateRefLocked(cs, symbol, flags, key, ts, nb)
}

// refQuarGate runs the quarantine fast path for one event over the reference
// store: re-arm when due (so the event that brings the class back is itself
// processed normally), otherwise count the suppression and report true so the
// caller skips the event. The store lock must be held.
func (s *Store) refQuarGate(cs *classState, nb *noteBuf) bool {
	if !cs.quarantined {
		return false
	}
	if cs.quar.rearmDue(cs.pol, s.sv.now) {
		cs.quarantined = false
		cs.quar = quarState{}
		nb.add(note{kind: noteQuarantine, cls: cs.cls, on: false})
		return false
	}
	cs.quar.suppressed++
	cs.health.Suppressed++
	return true
}

// refAllocator builds the reference store's policy-driven slot claimer as a
// closure for the interpreted event body below. The compiled engine body
// (engine.go) calls refClaim directly — same policy machinery, no per-event
// closure allocation — so both paths degrade identically.
func (s *Store) refAllocator(cs *classState, nb *noteBuf, failStop bool, firstErr *error) func(Key) *Instance {
	return func(k Key) *Instance {
		return s.refClaim(cs, nb, failStop, firstErr, k)
	}
}

// refClaim claims one instance slot under the class's overflow policy. It
// consults the fault injector first; on overflow it records one Overflow
// note, then degrades: DropNew drops, EvictOldest sacrifices the oldest
// instance and retries once (the retry consults the injector again; a second
// failure drops silently), QuarantineClass counts the streak and past the
// threshold takes the class out of service. nil means the caller must drop
// the would-be instance.
func (s *Store) refClaim(cs *classState, nb *noteBuf, failStop bool, firstErr *error, k Key) *Instance {
	cls := cs.cls
	if cs.quarantined {
		// Entered quarantine earlier in this same event.
		return nil
	}
	var slot *Instance
	if s.sv.allocFail == nil || !s.sv.allocFail(cls) {
		slot = cs.alloc()
	}
	if slot == nil {
		cs.health.Overflows++
		nb.add(note{kind: noteOverflow, cls: cls, key: k})
		switch cs.pol.overflow {
		case EvictOldest:
			// Prefer the oldest victim bound like the incoming
			// instance: a plain class-wide minimum would sacrifice
			// the unkeyed parent first (it is the oldest by
			// construction), killing the clone source for every
			// later binding in the bound.
			victim, anyVictim := -1, -1
			for i := range cs.insts {
				if !cs.insts[i].Active {
					continue
				}
				if anyVictim < 0 || cs.insts[i].birth < cs.insts[anyVictim].birth {
					anyVictim = i
				}
				if cs.insts[i].Key.Mask == k.Mask && (victim < 0 || cs.insts[i].birth < cs.insts[victim].birth) {
					victim = i
				}
			}
			if victim < 0 {
				victim = anyVictim
			}
			if victim >= 0 {
				ev := cs.insts[victim]
				cs.insts[victim].Active = false
				cs.live--
				cs.health.Evictions++
				nb.add(note{kind: noteEvict, cls: cls, inst: ev})
				if s.sv.allocFail == nil || !s.sv.allocFail(cls) {
					slot = cs.alloc()
				}
			}
		case QuarantineClass:
			cs.quar.streak++
			if cs.quar.streak >= cs.pol.quarantineAfter {
				cs.expunge()
				cs.quarantined = true
				cs.health.Quarantines++
				cs.quar.enter(cs.pol, s.sv.now)
				nb.add(note{kind: noteQuarantine, cls: cls, on: true})
			}
		}
	}
	if slot == nil {
		if failStop && *firstErr == nil {
			*firstErr = ErrOverflow
		}
		return nil
	}
	cs.quar.streak = 0
	return slot
}

// updateRefLocked is the event body proper, factored out so UpdateBatch can
// hold the store mutex across a whole run of ops (batch.go). The store lock
// must be held and cs registered. This is the interpreted (table-driven)
// walk; the compiled engine body in engine.go replaces its linear scans with
// precomputed plans, and the differential gate pins the two equal.
func (s *Store) updateRefLocked(cs *classState, symbol string, flags SymbolFlags, key Key, ts TransitionSet, nb *noteBuf) error {
	cls := cs.cls

	// Quarantine fast path. The re-arm check runs before suppression so
	// the event that brings the class back is itself processed normally.
	if s.refQuarGate(cs, nb) {
		return nil
	}

	var firstErr error
	failStop := cs.pol.failureIn(s) == FailStop
	fail := func(v *Violation) {
		cs.health.Violations++
		nb.add(note{kind: noteFail, cls: cls, v: v})
		if failStop && firstErr == nil {
			firstErr = v
		}
	}
	alloc := s.refAllocator(cs, nb, failStop, &firstErr)

	cleanup := ts.HasCleanup()

	// Snapshot the instances that were live before this event so that
	// clones created below are not themselves driven by the same event.
	var candArr [DefaultInstanceLimit]refCand
	live := candArr[:0]
	for i := range cs.insts {
		if cs.insts[i].Active {
			live = append(live, refCand{idx: i, birth: cs.insts[i].birth})
		}
	}

	matched := false
	for _, c := range live {
		inst := &cs.insts[c.idx]
		if !inst.Active || inst.birth != c.birth {
			// Evicted or expunged mid-event (the slot may already
			// hold a new occupant, which this event must not drive).
			continue
		}
		if !inst.Key.Compatible(key) {
			continue
		}

		var tr *Transition
		for j := range ts {
			if ts[j].From == inst.State {
				tr = &ts[j]
				break
			}
		}

		if tr == nil {
			switch {
			case cleanup:
				// The bound is ending but this instance is stuck
				// in a non-accepting state: an `eventually`
				// obligation was never satisfied.
				fail(&Violation{Class: cls, Kind: VerdictIncomplete, Key: inst.Key, State: inst.State, Symbol: symbol})
			case flags&SymStrict != 0:
				fail(&Violation{Class: cls, Kind: VerdictBadTransition, Key: inst.Key, State: inst.State, Symbol: symbol})
				inst.Active = false
				cs.live--
			}
			continue
		}

		if inst.Key.Specializes(key) {
			// The event binds variables this instance has not seen:
			// clone a more specific instance and leave the parent.
			newKey := inst.Key.Union(key)
			if cs.findExact(newKey) != nil {
				// The specific instance already exists and is
				// processed (or was) on its own terms.
				matched = true
				continue
			}
			// Copy the parent before allocating: eviction may free
			// and immediately reuse the parent's own slot.
			parent := *inst
			clone := alloc(newKey)
			if clone == nil {
				continue
			}
			cs.birthClock++
			*clone = Instance{State: tr.To, Key: newKey, Active: true, birth: cs.birthClock}
			cs.commit()
			nb.add(note{kind: noteClone, cls: cls, parent: parent, inst: *clone})
			nb.add(note{kind: noteTransition, cls: cls, inst: *clone, from: tr.From, to: tr.To, symbol: symbol})
			matched = true
			if tr.Cleanup() {
				nb.add(note{kind: noteAccept, cls: cls, inst: *clone})
			}
			continue
		}

		from := inst.State
		inst.State = tr.To
		nb.add(note{kind: noteTransition, cls: cls, inst: *inst, from: from, to: tr.To, symbol: symbol})
		matched = true
		if tr.Cleanup() {
			nb.add(note{kind: noteAccept, cls: cls, inst: *inst})
		}
	}

	if !matched && !cs.quarantined {
		if init := initTransition(ts); init != nil {
			initKey := key.project(init.KeyMask)
			if cs.findExact(initKey) == nil {
				if inst := alloc(initKey); inst != nil {
					cs.birthClock++
					*inst = Instance{State: init.To, Key: initKey, Active: true, birth: cs.birthClock}
					cs.commit()
					nb.add(note{kind: noteNew, cls: cls, inst: *inst})
					nb.add(note{kind: noteTransition, cls: cls, inst: *inst, from: init.From, to: init.To, symbol: symbol})
					matched = true
					if init.Cleanup() {
						nb.add(note{kind: noteAccept, cls: cls, inst: *inst})
					}
				}
			}
		} else if flags&SymRequired != 0 && cs.live > 0 {
			// Execution reached the assertion site with bindings for
			// which no instance exists: the events the assertion
			// requires never happened (fig. 9 “Error”). With no live
			// instances at all the automaton was never initialised —
			// the event arrived outside the assertion's bound — and
			// libtesla ignores events until the next «init».
			fail(&Violation{Class: cls, Kind: VerdictNoInstance, Key: key, Symbol: symbol})
		}
	}

	if cleanup && !cs.quarantined {
		// A cleanup transition resets the class: all instances are
		// expunged and events are ignored until the next «init».
		cs.expunge()
	}

	return firstErr
}

// initTransition returns the first init transition in ts, or nil.
func initTransition(ts TransitionSet) *Transition {
	for i := range ts {
		if ts[i].Init() {
			return &ts[i]
		}
	}
	return nil
}

// project restricts a key to the slots in mask.
func (k Key) project(mask uint32) Key {
	var out Key
	out.Mask = k.Mask & mask
	for i := 0; i < KeySize; i++ {
		if out.Mask&(1<<uint(i)) != 0 {
			out.Data[i] = k.Data[i]
		}
	}
	return out
}
