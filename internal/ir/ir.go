// Package ir defines the intermediate representation the TESLA toolchain
// instruments. It stands in for LLVM IR in the paper's pipeline (§4.2): a
// typed, register-based representation produced by the C-subset front-end
// without optimisation (mutable locals live in allocas, as in `clang -O0`
// output, so no φ-nodes are needed), instrumented by internal/instrument,
// then lightly optimised and executed by internal/vm.
package ir

import "fmt"

// Opcode enumerates IR instructions.
type Opcode int

const (
	// OpConst: Dst = Imm.
	OpConst Opcode = iota
	// OpAlloca: Dst = address of a fresh stack slot (Imm = word count).
	OpAlloca
	// OpAllocHeap: Dst = address of a fresh heap object of Struct's size.
	OpAllocHeap
	// OpLoad: Dst = *X.
	OpLoad
	// OpStore: *X = Y.
	OpStore
	// OpFieldAddr: Dst = &X->field (Struct, Field index).
	OpFieldAddr
	// OpFieldStore: X->field op= Y, preserving the source-level
	// assignment operator (AssignKind) so the instrumenter can match
	// simple and compound assignment events distinctly.
	OpFieldStore
	// OpBin: Dst = X <Bin> Y.
	OpBin
	// OpCall: Dst = Sym(Args...).
	OpCall
	// OpCallPtr: Dst = (*X)(Args...) — indirect call through a function
	// pointer value.
	OpCallPtr
	// OpFnAddr: Dst = address of function Sym.
	OpFnAddr
	// OpGlobalAddr: Dst = address of global Sym.
	OpGlobalAddr
	// OpBr: unconditional branch to Blk1.
	OpBr
	// OpCondBr: branch to Blk1 if X != 0 else Blk2.
	OpCondBr
	// OpRet: return X (or 0 when HasX is false).
	OpRet
)

// BinKind enumerates binary operators.
type BinKind int

const (
	BinAdd BinKind = iota
	BinSub
	BinMul
	BinDiv
	BinRem
	BinEq
	BinNe
	BinLt
	BinLe
	BinGt
	BinGe
	BinAnd // bitwise &
	BinOr  // bitwise |
	BinXor // bitwise ^
)

var binNames = [...]string{"add", "sub", "mul", "div", "rem", "eq", "ne",
	"lt", "le", "gt", "ge", "and", "or", "xor"}

func (b BinKind) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return fmt.Sprintf("bin%d", int(b))
}

// AssignKind mirrors the source assignment operator on OpFieldStore.
type AssignKind int

const (
	AssignSet  AssignKind = iota // =
	AssignAdd                    // +=
	AssignIncr                   // ++
)

// Instr is one IR instruction. Register operands are indices into the
// frame's virtual register file; -1 means unused.
type Instr struct {
	Op  Opcode
	Dst int
	X   int
	Y   int
	Imm int64
	Sym string
	// Struct/Field identify struct field accesses.
	Struct *StructType
	Field  int
	Assign AssignKind
	Args   []int
	Blk1   int
	Blk2   int
	HasX   bool // OpRet: X valid
	// Line is the source line, for diagnostics and site naming.
	Line int
}

// Block is a basic block: straight-line instructions ending in a terminator
// (Br, CondBr or Ret).
type Block struct {
	Name   string
	Instrs []Instr
}

// Func is an IR function. Parameters arrive in registers 0..NParams-1.
type Func struct {
	Name    string
	NParams int
	NRegs   int
	Blocks  []*Block
}

// NewReg allocates a fresh virtual register.
func (f *Func) NewReg() int {
	r := f.NRegs
	f.NRegs++
	return r
}

// NewBlock appends a new basic block and returns its index.
func (f *Func) NewBlock(name string) int {
	f.Blocks = append(f.Blocks, &Block{Name: name})
	return len(f.Blocks) - 1
}

// Field is one member of a struct type.
type Field struct {
	Name string
	// Offset in words from the struct base.
	Offset int
}

// StructType describes a C-subset struct layout (every field is one word:
// an int or a pointer).
type StructType struct {
	Name   string
	Fields []Field
}

// FieldIndex returns the index of the named field, or -1.
func (s *StructType) FieldIndex(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Size returns the struct size in words.
func (s *StructType) Size() int { return len(s.Fields) }

// Global is a module-level integer variable.
type Global struct {
	Name string
	Init int64
}

// Module is a compilation unit: the unit of instrumentation and of
// incremental rebuilds (§5.1).
type Module struct {
	Name    string
	Structs []*StructType
	Globals []*Global
	Funcs   []*Func
}

// Struct finds a struct type by name, or nil.
func (m *Module) Struct(name string) *StructType {
	for _, s := range m.Structs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Func finds a function by name, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Link combines modules into a single program image, as the paper's
// workflow links instrumented LLVM IR files. Struct types with the same
// name must have identical layouts; function and global names must be
// unique across modules.
func Link(name string, mods ...*Module) (*Module, error) {
	out := &Module{Name: name}
	structs := map[string]*StructType{}
	fns := map[string]bool{}
	globals := map[string]bool{}
	for _, m := range mods {
		for _, s := range m.Structs {
			if prev, ok := structs[s.Name]; ok {
				if prev.Size() != s.Size() {
					return nil, fmt.Errorf("ir: link %s: struct %s has conflicting layouts", name, s.Name)
				}
				continue
			}
			structs[s.Name] = s
			out.Structs = append(out.Structs, s)
		}
		for _, g := range m.Globals {
			if globals[g.Name] {
				return nil, fmt.Errorf("ir: link %s: duplicate global %s", name, g.Name)
			}
			globals[g.Name] = true
			out.Globals = append(out.Globals, g)
		}
		for _, f := range m.Funcs {
			if fns[f.Name] {
				return nil, fmt.Errorf("ir: link %s: duplicate function %s", name, f.Name)
			}
			fns[f.Name] = true
			out.Funcs = append(out.Funcs, f)
		}
	}
	return out, nil
}

// Clone deep-copies a module so instrumentation can run without mutating
// the front-end's output (needed for clean incremental-rebuild semantics).
func (m *Module) Clone() *Module {
	out := &Module{Name: m.Name, Structs: m.Structs}
	out.Globals = append([]*Global(nil), m.Globals...)
	for _, f := range m.Funcs {
		nf := &Func{Name: f.Name, NParams: f.NParams, NRegs: f.NRegs}
		for _, b := range f.Blocks {
			nb := &Block{Name: b.Name, Instrs: make([]Instr, len(b.Instrs))}
			copy(nb.Instrs, b.Instrs)
			for i := range nb.Instrs {
				if nb.Instrs[i].Args != nil {
					nb.Instrs[i].Args = append([]int(nil), nb.Instrs[i].Args...)
				}
			}
			nf.Blocks = append(nf.Blocks, nb)
		}
		out.Funcs = append(out.Funcs, nf)
	}
	return out
}
