package objc

import (
	"testing"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/spec"
)

func probe(rt *Runtime) *Object {
	cls := NewClass("Probe", nil)
	cls.AddMethod("ping", func(_ *Runtime, _ *Object, args ...core.Value) core.Value {
		if len(args) > 0 {
			return args[0] + 1
		}
		return 1
	})
	return rt.NewObject(cls)
}

func TestDispatchAndCounting(t *testing.T) {
	rt := NewRuntime(NoTracing)
	obj := probe(rt)
	if got := rt.MsgSend(obj, "ping", 41); got != 42 {
		t.Fatalf("ping(41) = %d", got)
	}
	if rt.MsgCount != 1 {
		t.Fatalf("MsgCount = %d", rt.MsgCount)
	}
}

func TestMethodReplacementAtRuntime(t *testing.T) {
	// §4.3: methods can be replaced at run time, defeating static
	// callee-side instrumentation.
	rt := NewRuntime(NoTracing)
	obj := probe(rt)
	obj.Class.AddMethod("ping", func(_ *Runtime, _ *Object, _ ...core.Value) core.Value {
		return 999
	})
	if got := rt.MsgSend(obj, "ping", 41); got != 999 {
		t.Fatalf("replaced method: %d", got)
	}
}

func TestReturnHooks(t *testing.T) {
	rt := NewRuntime(Interposed)
	obj := probe(rt)
	var order []string
	rt.Interpose("ping", func(*Object, string, []core.Value) { order = append(order, "enter") })
	rt.InterposeReturn("ping", func(*Object, string, []core.Value) { order = append(order, "exit") })
	rt.MsgSend(obj, "ping")
	if len(order) != 2 || order[0] != "enter" || order[1] != "exit" {
		t.Fatalf("order = %v", order)
	}
}

func TestInterposeTESLAForwardsEvents(t *testing.T) {
	auto := automata.MustCompile(spec.Within("objc-test", "loop",
		spec.Previously(spec.AtLeast(1, spec.Msg(spec.Any("id"), "ping")))))
	h := core.NewCountingHandler()
	m := monitor.MustNew(monitor.Options{Handler: h}, auto)
	th := m.NewThread()

	rt := NewRuntime(TESLA)
	obj := probe(rt)
	rt.InterposeTESLA(th, []string{"ping"}, []string{"ping"})

	th.Call("loop")
	rt.MsgSend(obj, "ping", 1)
	th.Site("objc-test")
	th.Return("loop", 0)
	if len(h.Violations()) != 0 {
		t.Fatalf("violations: %v", h.Violations())
	}
	// Without the message, ATLEAST(1, ...) fails at the site.
	th.Call("loop")
	th.Site("objc-test")
	th.Return("loop", 0)
	if len(h.Violations()) != 1 {
		t.Fatalf("missing message not detected: %v", h.Violations())
	}
}

func TestTraceModeStrings(t *testing.T) {
	for mode, want := range map[TraceMode]string{
		NoTracing:       "release",
		TracingCompiled: "tracing-compiled",
		Interposed:      "interposition",
		TESLA:           "TESLA",
	} {
		if mode.String() != want {
			t.Errorf("%d = %q", mode, mode.String())
		}
	}
	if TraceMode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
}

func TestIVarStorage(t *testing.T) {
	rt := NewRuntime(NoTracing)
	cls := NewClass("Counter", nil)
	cls.AddMethod("bump", func(_ *Runtime, self *Object, _ ...core.Value) core.Value {
		self.IVars["n"]++
		return self.IVars["n"]
	})
	obj := rt.NewObject(cls)
	rt.MsgSend(obj, "bump")
	if got := rt.MsgSend(obj, "bump"); got != 2 {
		t.Fatalf("ivar = %d", got)
	}
}
