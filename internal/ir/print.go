package ir

import (
	"fmt"
	"strings"
)

// String renders the module in a readable assembly-like syntax, the
// analogue of LLVM's textual IR, used by cmd/tesla-instrument's -dump flag
// and golden tests.
func (m *Module) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; module %s\n", m.Name)
	for _, s := range m.Structs {
		fmt.Fprintf(&b, "struct %s {", s.Name)
		for i, f := range s.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Name)
		}
		b.WriteString("}\n")
	}
	for _, g := range m.Globals {
		fmt.Fprintf(&b, "global %s = %d\n", g.Name, g.Init)
	}
	for _, f := range m.Funcs {
		b.WriteString(f.String())
	}
	return b.String()
}

// String renders one function.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(%d params, %d regs) {\n", f.Name, f.NParams, f.NRegs)
	for bi, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d: ; %s\n", bi, blk.Name)
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "\t%s\n", in.String())
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders one instruction.
func (in Instr) String() string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("r%d = const %d", in.Dst, in.Imm)
	case OpAlloca:
		return fmt.Sprintf("r%d = alloca %d", in.Dst, in.Imm)
	case OpAllocHeap:
		return fmt.Sprintf("r%d = alloc %s", in.Dst, in.Struct.Name)
	case OpLoad:
		return fmt.Sprintf("r%d = load r%d", in.Dst, in.X)
	case OpStore:
		return fmt.Sprintf("store r%d, r%d", in.X, in.Y)
	case OpFieldAddr:
		return fmt.Sprintf("r%d = fieldaddr r%d, %s.%s", in.Dst, in.X, in.Struct.Name, in.Struct.Fields[in.Field].Name)
	case OpFieldStore:
		op := map[AssignKind]string{AssignSet: "=", AssignAdd: "+=", AssignIncr: "++"}[in.Assign]
		return fmt.Sprintf("fieldstore r%d->%s.%s %s r%d", in.X, in.Struct.Name, in.Struct.Fields[in.Field].Name, op, in.Y)
	case OpBin:
		return fmt.Sprintf("r%d = %s r%d, r%d", in.Dst, in.Imm2Bin(), in.X, in.Y)
	case OpCall:
		return fmt.Sprintf("r%d = call %s%s", in.Dst, in.Sym, regList(in.Args))
	case OpCallPtr:
		return fmt.Sprintf("r%d = callptr r%d%s", in.Dst, in.X, regList(in.Args))
	case OpFnAddr:
		return fmt.Sprintf("r%d = fnaddr %s", in.Dst, in.Sym)
	case OpGlobalAddr:
		return fmt.Sprintf("r%d = globaladdr %s", in.Dst, in.Sym)
	case OpBr:
		return fmt.Sprintf("br b%d", in.Blk1)
	case OpCondBr:
		return fmt.Sprintf("condbr r%d, b%d, b%d", in.X, in.Blk1, in.Blk2)
	case OpRet:
		if in.HasX {
			return fmt.Sprintf("ret r%d", in.X)
		}
		return "ret"
	default:
		return fmt.Sprintf("op%d?", int(in.Op))
	}
}

// Imm2Bin decodes the binary operator stored in Imm.
func (in Instr) Imm2Bin() BinKind { return BinKind(in.Imm) }

func regList(args []int) string {
	var b strings.Builder
	b.WriteString("(")
	for i, a := range args {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "r%d", a)
	}
	b.WriteString(")")
	return b.String()
}
