package trace

import (
	"fmt"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/monitor"
)

// The shrinker reduces a violating trace to a minimal counterexample with
// ddmin (Zeller & Hildebrandt's delta debugging): it searches subsets and
// complements of the program-event sequence at doubling granularity,
// keeping any candidate that still fails "the same way" — a violation with
// the same class and verdict kind as the original. The result is
// 1-minimal: removing any single remaining event loses the violation.

// ShrinkResult is a minimised counterexample.
type ShrinkResult struct {
	// Trace is the re-recorded minimal trace (fresh sequence numbers and
	// the lifecycle events the minimal run causes), a valid trace file of
	// its own.
	Trace *Trace
	// Target is the preserved violation signature (class/kind).
	Target string
	// Kept and Removed count program events in and out of the result.
	Kept, Removed int
}

// Shrink delta-debugs the trace against the given automata. The trace must
// replay to at least one violation; its first violation's signature is the
// one preserved. Like Replay, Shrink assumes default supervision policies;
// use ShrinkOpts when the violation only manifests under the live run's
// overflow policy.
func Shrink(t *Trace, autos []*automata.Automaton) (*ShrinkResult, error) {
	return ShrinkOpts(t, autos, monitor.Options{})
}

// ShrinkOpts is Shrink under explicit monitor options: every replay of a
// candidate subset — and the final re-recording — runs under the same
// supervision policy, so policy-dependent violations (an instance evicted
// under overflow pressure, a quarantined class) shrink like any other.
func ShrinkOpts(t *Trace, autos []*automata.Automaton, opts monitor.Options) (*ShrinkResult, error) {
	if err := Check(t, autos); err != nil {
		return nil, err
	}
	progs := t.Programs()
	base, err := ReplayOpts(t, autos, opts)
	if err != nil {
		return nil, err
	}
	if len(base.Violations) == 0 {
		return nil, fmt.Errorf("trace: nothing to shrink: replay produces no violation")
	}
	target := base.Violations[0].Signature()

	test := func(events []Event) bool { return violates(events, autos, target, opts) }
	minimal := ddmin(progs, test)

	shrunk, err := RerecordOpts(minimal, autos, opts)
	if err != nil {
		return nil, err
	}
	return &ShrinkResult{
		Trace:   shrunk,
		Target:  target,
		Kept:    len(minimal),
		Removed: len(progs) - len(minimal),
	}, nil
}

// violates replays a candidate event sequence and reports whether any
// violation with the target signature occurs. Candidates that fail to
// replay at all (structurally broken subsets) simply don't violate.
func violates(events []Event, autos []*automata.Automaton, target string, opts monitor.Options) bool {
	counting := core.NewCountingHandler()
	opts.Handler = counting
	opts.FailFast = false
	m, err := monitor.New(opts, autos...)
	if err != nil {
		return false
	}
	sub := &Trace{FormatVersion: Version, Automata: namesOf(autos), Events: events}
	if err := Feed(sub, m); err != nil {
		return false
	}
	for _, v := range counting.Violations() {
		if v.Signature() == target {
			return true
		}
	}
	return false
}

// ddmin is the classic delta-debugging minimisation loop over an event
// sequence: try subsets, then complements, doubling granularity when
// neither reduces. test must hold for the full input; the result is
// 1-minimal with respect to test.
func ddmin(events []Event, test func([]Event) bool) []Event {
	cur := events
	n := 2
	for len(cur) >= 2 {
		chunk := (len(cur) + n - 1) / n
		reduced := false

		for i := 0; i < len(cur) && !reduced; i += chunk {
			sub := cur[i:min(i+chunk, len(cur))]
			if len(sub) < len(cur) && test(sub) {
				cur = append([]Event(nil), sub...)
				n = 2
				reduced = true
			}
		}
		if !reduced {
			for i := 0; i < len(cur) && !reduced; i += chunk {
				comp := make([]Event, 0, len(cur)-chunk)
				comp = append(comp, cur[:i]...)
				comp = append(comp, cur[min(i+chunk, len(cur)):]...)
				if len(comp) < len(cur) && test(comp) {
					cur = comp
					n = max(n-1, 2)
					reduced = true
				}
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n = min(2*n, len(cur))
		}
	}
	return cur
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
