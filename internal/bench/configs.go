// Package bench is the harness that regenerates the paper's evaluation:
// every table and figure of §5 has a runner here, shared by cmd/tesla-bench
// and the root-level testing.B benchmarks. Absolute numbers differ from the
// paper's FreeBSD/LLVM testbed — the substrate here is a simulator — but
// the shapes (who wins, by roughly what factor, where the crossovers fall)
// are the reproduction target.
package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"tesla/internal/core"
	"tesla/internal/kernel"
	"tesla/internal/monitor"
)

// KernelConfig is one measured kernel configuration of §5.2.2.
type KernelConfig struct {
	Name string
	Mode kernel.Mode
	Sets kernel.Set
	// Naive disables the lazy-init optimisation (pre-optimisation state
	// for figure 13).
	Naive bool
}

// KernelConfigs are the configurations of figure 11, in display order:
// a release kernel, a standard-debug kernel (WITNESS + INVARIANTS), the
// TESLA instrumentation framework with test assertions only, then
// cumulative assertion sets, and everything plus debugging.
func KernelConfigs() []KernelConfig {
	return []KernelConfig{
		{Name: "Release", Mode: kernel.Release, Sets: 0},
		{Name: "Debug", Mode: kernel.Debug, Sets: 0},
		{Name: "Infrastructure", Mode: kernel.Release, Sets: kernel.SetInfra},
		{Name: "MP", Mode: kernel.Release, Sets: kernel.SetMP},
		{Name: "MP+MS", Mode: kernel.Release, Sets: kernel.SetMP | kernel.SetMS},
		{Name: "MF", Mode: kernel.Release, Sets: kernel.SetMF},
		{Name: "MF+MS", Mode: kernel.Release, Sets: kernel.SetMF | kernel.SetMS},
		{Name: "M", Mode: kernel.Release, Sets: kernel.SetM},
		{Name: "All", Mode: kernel.Release, Sets: kernel.SetAll},
		{Name: "All (Debug)", Mode: kernel.Debug, Sets: kernel.SetAll},
	}
}

// ConfigByName finds a configuration.
func ConfigByName(name string) (KernelConfig, bool) {
	for _, c := range KernelConfigs() {
		if c.Name == name {
			return c, true
		}
	}
	return KernelConfig{}, false
}

// BootConfig boots a kernel for a configuration.
func BootConfig(c KernelConfig, bugs kernel.BugConfig) (*kernel.Kernel, error) {
	k, _, err := kernel.Boot(c.Mode, c.Sets, bugs, monitor.Options{
		Handler: core.NopHandler{},
		Naive:   c.Naive,
	})
	return k, err
}

// Row is one measurement.
type Row struct {
	Label string
	Value float64
	Unit  string
}

// Table prints rows with an optional normalisation baseline.
func Table(w io.Writer, title string, rows []Row, normaliseTo string) {
	fmt.Fprintf(w, "%s\n", title)
	var base float64
	for _, r := range rows {
		if r.Label == normaliseTo {
			base = r.Value
		}
	}
	for _, r := range rows {
		if base > 0 {
			fmt.Fprintf(w, "  %-16s %12.2f %-8s %8.2fx\n", r.Label, r.Value, r.Unit, r.Value/base)
		} else {
			fmt.Fprintf(w, "  %-16s %12.2f %-8s\n", r.Label, r.Value, r.Unit)
		}
	}
	fmt.Fprintln(w)
}

// Measure times fn over iters iterations and returns time per iteration.
func Measure(iters int, fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start) / time.Duration(iters)
}

// Percentile returns the p-quantile (0..1) of the sorted-in-place samples.
func Percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(p * float64(len(samples)-1))
	return samples[idx]
}
