package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"tesla/internal/core"
)

// FigShard measures the sharded global store against the single-mutex
// reference store on an OLTP-shaped workload: a pool of keyed sessions
// (mirroring the SysBench transaction mix of figure 11b, where every
// transaction drives events for one connection's binding) updated from a
// growing number of goroutines, with a required assertion-site event every
// few transactions. The reference store pays §3.2's explicit lock plus an
// O(limit) scan per event; the sharded store pays one stripe lock and O(1)
// census-driven index lookups, so it wins on one core by doing less work
// per event and on many cores by also not serialising unrelated keys.

const (
	// shardFigSessions is the live-session pool; it is deliberately much
	// smaller than shardFigLimit so the reference store's per-event scan
	// over the whole preallocated block is visible, as in the kernel
	// workloads where instance limits are sized for the worst case.
	shardFigSessions = 128
	shardFigLimit    = 1024
	shardFigKeysPerG = 16
)

// shardFigTransitions is the session automaton: «init» binds the connection
// (slot 0), work events toggle it between two mid states, and the required
// site event self-loops — reaching the assertion site with a live session is
// the success path.
func shardFigTransitions() (enter, work, site core.TransitionSet) {
	enter = core.TransitionSet{{From: 0, To: 1, Flags: core.TransInit, KeyMask: 1}}
	work = core.TransitionSet{{From: 1, To: 2, KeyMask: 1}, {From: 2, To: 1, KeyMask: 1}}
	site = core.TransitionSet{{From: 1, To: 1, KeyMask: 1}, {From: 2, To: 2, KeyMask: 1}}
	return
}

// shardFigStore builds and prepopulates one store.
func shardFigStore(cls *core.Class, shards int) *core.Store {
	s := core.NewStoreOpts(core.StoreOpts{Context: core.Global, Shards: shards})
	s.Register(cls)
	enter, _, _ := shardFigTransitions()
	for k := 0; k < shardFigSessions; k++ {
		s.UpdateState(cls, "enter", 0, core.NewKey(core.Value(k)), enter)
	}
	return s
}

// FigShardMeasure drives total events through a store from g goroutines on
// disjoint key ranges and returns events/sec.
func FigShardMeasure(shards, g, total int) float64 {
	cls := &core.Class{Name: "session", States: 8, Limit: shardFigLimit}
	s := shardFigStore(cls, shards)
	_, work, site := shardFigTransitions()

	perG := total / g
	var wg sync.WaitGroup
	start := time.Now()
	for t := 0; t < g; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			base := (t * shardFigKeysPerG) % shardFigSessions
			for i := 0; i < perG; i++ {
				key := core.NewKey(core.Value(base + i%shardFigKeysPerG))
				if i%8 == 7 {
					s.UpdateState(cls, "site", core.SymRequired, key, site)
				} else {
					s.UpdateState(cls, "work", 0, key, work)
				}
			}
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return float64(perG*g) / elapsed.Seconds()
}

// FigShard prints events/sec against goroutine count for the single-mutex
// reference store and the sharded store. The two stores are measured in
// interleaved rounds per goroutine count so scheduler drift does not bias
// either side; the best round is reported, as is conventional for
// throughput.
func FigShard(w io.Writer, iters int) error {
	total := iters * 8
	if total < 16000 {
		total = 16000
	}
	// The sharded store's stripe count is fixed at 8 across the ladder so
	// the figure varies exactly one thing (goroutines); 0 would track
	// GOMAXPROCS and confound the comparison on small hosts.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))

	fmt.Fprintln(w, "Figure shard: global store throughput, mutex vs sharded (OLTP sessions)")
	fmt.Fprintf(w, "  %-12s %14s %14s %10s\n", "goroutines", "mutex ev/s", "sharded ev/s", "speedup")
	const rounds = 3
	for _, g := range []int{1, 2, 4, 8} {
		var mutex, sharded float64
		for r := 0; r < rounds; r++ {
			if v := FigShardMeasure(1, g, total); v > mutex {
				mutex = v
			}
			if v := FigShardMeasure(8, g, total); v > sharded {
				sharded = v
			}
		}
		fmt.Fprintf(w, "  %-12d %14.0f %14.0f %9.2fx\n", g, mutex, sharded, sharded/mutex)
	}
	fmt.Fprintln(w, "  reproduction shape: the sharded store replaces the reference store's")
	fmt.Fprintln(w, "  global lock + O(limit) scans with striped locks + O(1) index lookups,")
	fmt.Fprintln(w, "  so throughput holds (or grows) with goroutines instead of collapsing")
	fmt.Fprintln(w)
	return nil
}
