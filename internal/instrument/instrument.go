// Package instrument rewrites IR modules so that program events drive
// automaton transitions, implementing §4.2 of the paper. It adds two kinds
// of code: program hooks (calls to generated functions at function entry and
// returns, around call sites, after structure-field stores and at assertion
// sites) and event translators (generated functions that check an event's
// static parameters and, on success, pass the dynamic variable–value
// mapping to libtesla via the __tesla_update intrinsic).
//
// Function events are instrumented in callee context when the target is
// defined in the program (hooks in its entry block and before its returns)
// and in caller context otherwise (hooks immediately before and after call
// sites) — or as forced by the caller/callee modifiers. Instrumentation
// runs on unoptimised IR; the optimiser runs afterwards (§4.2).
package instrument

import (
	"fmt"
	"strings"

	"tesla/internal/automata"
	"tesla/internal/compiler"
	"tesla/internal/ir"
	"tesla/internal/monitor"
	"tesla/internal/spec"
)

// Options configures instrumentation.
type Options struct {
	// DefinedFns is the set of functions defined anywhere in the program
	// (across all modules), used to pick caller vs callee side for
	// unmodified events. Nil means "only this module's functions".
	DefinedFns map[string]bool
	// Suffix disambiguates generated translator names when several
	// modules are instrumented separately and then linked (the LLVM
	// equivalent relies on linkonce semantics).
	Suffix string
	// Elide names automata whose hooks are skipped entirely — the
	// payoff of a PROVABLY-SAFE verdict from internal/staticcheck. The
	// automata stay in the monitor's slice (indices compiled into the
	// remaining hooks are preserved); they simply never receive events,
	// and their assertion sites lower to constants. Elided counts are
	// recorded in Stats.
	Elide map[string]bool
}

// Stats reports what the instrumenter did, for build reporting and the
// figure 10 experiment.
type Stats struct {
	Hooks       int // hook call sites inserted
	Translators int // event-translator functions generated
	Sites       int // assertion sites wired
	// ElidedHooks/ElidedSites count the hooks and sites that elision
	// (Options.Elide) suppressed; Hooks+ElidedHooks is invariant across
	// elision choices. Translators for elided automata are simply not
	// generated and are not counted.
	ElidedHooks int
	ElidedSites int
}

// Module instruments a clone of mod against the automata and returns it;
// the input module is not mutated. The automata slice order must match the
// order used to construct the runtime monitor (indices are compiled in).
func Module(mod *ir.Module, autos []*automata.Automaton, opts Options) (*ir.Module, Stats, error) {
	ins := &instrumenter{
		mod:     mod.Clone(),
		autos:   autos,
		slots:   monitor.BoundSlots(autos),
		defined: opts.DefinedFns,
		suffix:  opts.Suffix,
		elide:   opts.Elide,
		genned:  map[string]bool{},
	}
	if ins.defined == nil {
		ins.defined = map[string]bool{}
		for _, f := range mod.Funcs {
			ins.defined[f.Name] = true
		}
	}
	if err := ins.run(); err != nil {
		return nil, Stats{}, err
	}
	return ins.mod, ins.stats, nil
}

// Strip removes residual assertion-site pseudo-calls, producing the
// "Default" (uninstrumented) build used as the experimental baseline.
func Strip(mod *ir.Module) *ir.Module {
	out := mod.Clone()
	for _, f := range out.Funcs {
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && strings.HasPrefix(in.Sym, compiler.SitePseudoFn) {
					kept = append(kept, ir.Instr{Op: ir.OpConst, Dst: in.Dst, Imm: 0})
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
	}
	return out
}

type instrumenter struct {
	mod     *ir.Module
	autos   []*automata.Automaton
	slots   map[string]int
	defined map[string]bool
	suffix  string
	elide   map[string]bool
	genned  map[string]bool
	stats   Stats
}

func (ins *instrumenter) run() error {
	for _, f := range ins.mod.Funcs {
		if strings.HasPrefix(f.Name, "__tesla") {
			continue
		}
		if err := ins.instrumentFunc(f); err != nil {
			return err
		}
	}
	return nil
}

// calleeSide reports whether a function event should hook the callee.
func (ins *instrumenter) calleeSide(sym *automata.Symbol) bool {
	switch sym.Side {
	case spec.SideCallee:
		return true
	case spec.SideCaller:
		return false
	default:
		return ins.defined[sym.Fn]
	}
}

func (ins *instrumenter) instrumentFunc(f *ir.Func) error {
	// Entry hooks run bound begins before entry-event translators; return
	// hooks run exit-event translators before bound ends, matching the
	// runtime dispatch order (events belong to the bound they occur in).
	var entryBounds, entryEvents []ir.Instr
	var retEvents, retBounds []ir.Instr
	elidedEntry, elidedRet := 0, 0

	for ai, a := range ins.autos {
		el := ins.elide[a.Name]
		b := a.Spec.Bound
		slot := ins.slots[b.String()]
		if b.Begin.Fn == f.Name {
			h := ir.Instr{Op: ir.OpCall, Sym: "__tesla_bound_begin", Imm: int64(slot)}
			switch {
			case el && b.Begin.Kind == spec.StaticCall:
				elidedEntry++
			case el:
				elidedRet++
			case b.Begin.Kind == spec.StaticCall:
				entryBounds = append(entryBounds, h)
			default:
				retBounds = append(retBounds, h)
			}
		}
		if b.End.Fn == f.Name {
			h := ir.Instr{Op: ir.OpCall, Sym: "__tesla_bound_end", Imm: int64(slot)}
			switch {
			case el && b.End.Kind == spec.StaticReturn:
				elidedRet++
			case el:
				elidedEntry++
			case b.End.Kind == spec.StaticReturn:
				retBounds = append(retBounds, h)
			default:
				entryEvents = append(entryEvents, h)
			}
		}

		for _, sym := range a.Symbols {
			if sym.ObjC || sym.Fn != f.Name || !ins.calleeSide(sym) {
				continue
			}
			switch sym.Kind {
			case automata.KindFuncEntry:
				if len(sym.Args) > f.NParams {
					continue // cannot match: fewer params than patterns
				}
				if el {
					elidedEntry++
					continue
				}
				tr := ins.translator(ai, sym)
				args := paramRegs(len(sym.Args))
				entryEvents = append(entryEvents, ir.Instr{Op: ir.OpCall, Sym: tr, Args: args})
			case automata.KindFuncExit:
				if len(sym.Args) > f.NParams {
					continue
				}
				if el {
					elidedRet++
					continue
				}
				tr := ins.translator(ai, sym)
				// Args fixed; ret value appended at each ret site.
				retEvents = append(retEvents, ir.Instr{Op: ir.OpCall, Sym: tr, Args: paramRegs(len(sym.Args)), Imm: 1})
			}
		}
	}
	ins.stats.ElidedHooks += elidedEntry
	entryHooks := append(entryBounds, entryEvents...)
	retHooks := append(retEvents, retBounds...)

	// Insert entry hooks at the top of the entry block.
	if len(entryHooks) > 0 {
		entry := f.Blocks[0]
		pre := make([]ir.Instr, 0, len(entryHooks))
		for _, h := range entryHooks {
			h.Dst = f.NewReg()
			pre = append(pre, h)
			ins.stats.Hooks++
		}
		entry.Instrs = append(pre, entry.Instrs...)
	}

	// Walk every block: ret hooks, caller-side call hooks, field stores,
	// assertion sites.
	for _, blk := range f.Blocks {
		out := make([]ir.Instr, 0, len(blk.Instrs))
		for _, in := range blk.Instrs {
			switch in.Op {
			case ir.OpRet:
				ins.stats.ElidedHooks += elidedRet
				for _, h := range retHooks {
					h2 := h
					h2.Dst = f.NewReg()
					if h.Imm == 1 && h.Op == ir.OpCall && strings.HasPrefix(h.Sym, "__tesla_evt") {
						// Exit translator: append the return value.
						h2.Imm = 0
						retArg := in.X
						if !in.HasX {
							retArg = f.NewReg()
							out = append(out, ir.Instr{Op: ir.OpConst, Dst: retArg, Imm: 0})
						}
						h2.Args = append(append([]int{}, h.Args...), retArg)
					}
					out = append(out, h2)
					ins.stats.Hooks++
				}
				out = append(out, in)

			case ir.OpCall:
				if strings.HasPrefix(in.Sym, compiler.SitePseudoFn) {
					site, err := ins.siteCall(in, f)
					if err != nil {
						return err
					}
					out = append(out, site...)
					continue
				}
				pre, post := ins.callerHooks(f, in)
				out = append(out, pre...)
				out = append(out, in)
				out = append(out, post...)

			case ir.OpFieldStore:
				out = append(out, in)
				out = append(out, ins.fieldHooks(f, in)...)

			default:
				out = append(out, in)
			}
		}
		blk.Instrs = out
	}
	return nil
}

func paramRegs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// siteCall replaces a __tesla_inline_assertion pseudo-call with a call to
// the __tesla_site intrinsic for the matching automaton. Assertions with no
// automaton in this build are removed (their Dst is fed a constant).
func (ins *instrumenter) siteCall(in ir.Instr, f *ir.Func) ([]ir.Instr, error) {
	name := strings.TrimPrefix(in.Sym, compiler.SitePseudoFn+":")
	for ai, a := range ins.autos {
		if a.Name == name {
			if ins.elide[a.Name] {
				ins.stats.ElidedSites++
				break
			}
			ins.stats.Sites++
			return []ir.Instr{{
				Op:   ir.OpCall,
				Dst:  in.Dst,
				Sym:  "__tesla_site",
				Imm:  int64(ai),
				Args: in.Args,
				Line: in.Line,
			}}, nil
		}
	}
	return []ir.Instr{{Op: ir.OpConst, Dst: in.Dst, Imm: 0}}, nil
}

// callerHooks instruments around a call site when the event wants (or
// needs) caller-side instrumentation.
func (ins *instrumenter) callerHooks(f *ir.Func, in ir.Instr) (pre, post []ir.Instr) {
	if strings.HasPrefix(in.Sym, "__tesla") || in.Sym == "print" {
		return nil, nil
	}
	for ai, a := range ins.autos {
		el := ins.elide[a.Name]
		for _, sym := range a.Symbols {
			if sym.ObjC || sym.Fn != in.Sym || ins.calleeSide(sym) {
				continue
			}
			if len(sym.Args) > len(in.Args) {
				continue
			}
			switch sym.Kind {
			case automata.KindFuncEntry:
				if el {
					ins.stats.ElidedHooks++
					continue
				}
				tr := ins.translator(ai, sym)
				pre = append(pre, ir.Instr{
					Op: ir.OpCall, Dst: f.NewReg(), Sym: tr,
					Args: append([]int{}, in.Args[:len(sym.Args)]...),
				})
				ins.stats.Hooks++
			case automata.KindFuncExit:
				if el {
					ins.stats.ElidedHooks++
					continue
				}
				tr := ins.translator(ai, sym)
				post = append(post, ir.Instr{
					Op: ir.OpCall, Dst: f.NewReg(), Sym: tr,
					Args: append(append([]int{}, in.Args[:len(sym.Args)]...), in.Dst),
				})
				ins.stats.Hooks++
			}
		}
	}
	return pre, post
}

// fieldHooks instruments after a matching structure-field store. The
// translator receives (target, value); increments pass a dummy value.
func (ins *instrumenter) fieldHooks(f *ir.Func, in ir.Instr) []ir.Instr {
	var out []ir.Instr
	for ai, a := range ins.autos {
		for _, sym := range a.Symbols {
			if sym.Kind != automata.KindFieldAssign {
				continue
			}
			if sym.Struct != in.Struct.Name || sym.Field != in.Struct.Fields[in.Field].Name {
				continue
			}
			if assignKind(sym.AssignOp) != in.Assign {
				continue
			}
			if ins.elide[a.Name] {
				ins.stats.ElidedHooks++
				continue
			}
			tr := ins.translator(ai, sym)
			val := in.Y
			if in.Assign == ir.AssignIncr {
				val = in.X // unused by the translator; keep registers valid
			}
			out = append(out, ir.Instr{
				Op: ir.OpCall, Dst: f.NewReg(), Sym: tr,
				Args: []int{in.X, val},
			})
			ins.stats.Hooks++
		}
	}
	return out
}

func assignKind(op spec.AssignOp) ir.AssignKind {
	switch op {
	case spec.OpAddAssign:
		return ir.AssignAdd
	case spec.OpIncr:
		return ir.AssignIncr
	default:
		return ir.AssignSet
	}
}

// translator returns (generating on first use) the event-translator
// function for (automaton, symbol). Translators are chains of basic blocks:
// first the static checks on event parameters, then — if they pass — a
// fixed-size key is populated with the dynamic variable–value mapping and
// passed to libtesla via __tesla_update (§4.2 “Event translators”).
func (ins *instrumenter) translator(autoIdx int, sym *automata.Symbol) string {
	name := fmt.Sprintf("__tesla_evt_%d_%d%s", autoIdx, sym.ID, ins.suffix)
	if ins.genned[name] {
		return name
	}
	ins.genned[name] = true
	ins.stats.Translators++

	var nparams int
	switch sym.Kind {
	case automata.KindFieldAssign:
		nparams = 2 // target, value
	case automata.KindFuncExit:
		nparams = len(sym.Args) + 1 // args..., ret
	default:
		nparams = len(sym.Args)
	}

	f := &ir.Func{Name: name, NParams: nparams}
	f.NRegs = nparams
	body := f.NewBlock("checks")
	fail := -1 // created on demand

	cur := body
	emit := func(in ir.Instr) {
		f.Blocks[cur].Instrs = append(f.Blocks[cur].Instrs, in)
	}
	konst := func(v int64) int {
		r := f.NewReg()
		emit(ir.Instr{Op: ir.OpConst, Dst: r, Imm: v})
		return r
	}
	failBlock := func() int {
		if fail < 0 {
			fail = f.NewBlock("fail")
			z := f.NewReg()
			f.Blocks[fail].Instrs = append(f.Blocks[fail].Instrs,
				ir.Instr{Op: ir.OpConst, Dst: z, Imm: 0},
				ir.Instr{Op: ir.OpRet, X: z, HasX: true})
		}
		return fail
	}
	// check branches to the next check block when cond holds, else fail.
	check := func(cond int) {
		next := f.NewBlock("check")
		emit(ir.Instr{Op: ir.OpCondBr, X: cond, Blk1: next, Blk2: failBlock()})
		cur = next
	}
	loadIndirect := func(reg int, indirect bool) int {
		if !indirect {
			return reg
		}
		r := f.NewReg()
		emit(ir.Instr{Op: ir.OpLoad, Dst: r, X: reg})
		return r
	}
	staticCheck := func(reg int, p spec.ArgPattern) {
		v := loadIndirect(reg, p.Indirect)
		switch p.Kind {
		case spec.PatConst:
			k := konst(p.Const)
			c := f.NewReg()
			emit(ir.Instr{Op: ir.OpBin, Dst: c, Imm: int64(ir.BinEq), X: v, Y: k})
			check(c)
		case spec.PatFlags:
			k := konst(p.Const)
			masked := f.NewReg()
			emit(ir.Instr{Op: ir.OpBin, Dst: masked, Imm: int64(ir.BinAnd), X: v, Y: k})
			c := f.NewReg()
			emit(ir.Instr{Op: ir.OpBin, Dst: c, Imm: int64(ir.BinEq), X: masked, Y: k})
			check(c)
		case spec.PatBitmask:
			k := konst(^p.Const)
			masked := f.NewReg()
			emit(ir.Instr{Op: ir.OpBin, Dst: masked, Imm: int64(ir.BinAnd), X: v, Y: k})
			z := konst(0)
			c := f.NewReg()
			emit(ir.Instr{Op: ir.OpBin, Dst: c, Imm: int64(ir.BinEq), X: masked, Y: z})
			check(c)
		}
	}

	// Static checks and duplicate-variable consistency.
	varReg := map[string]int{}
	varCheck := func(reg int, name string, indirect bool) int {
		v := loadIndirect(reg, indirect)
		if prev, ok := varReg[name]; ok {
			c := f.NewReg()
			emit(ir.Instr{Op: ir.OpBin, Dst: c, Imm: int64(ir.BinEq), X: v, Y: prev})
			check(c)
		} else {
			varReg[name] = v
		}
		return v
	}

	switch sym.Kind {
	case automata.KindFieldAssign:
		if p := sym.Target; p.Kind == spec.PatVar {
			varCheck(0, p.Var, p.Indirect)
		} else {
			staticCheck(0, p)
		}
		if sym.AssignOp != spec.OpIncr {
			if p := sym.Value; p.Kind == spec.PatVar {
				varCheck(1, p.Var, p.Indirect)
			} else {
				staticCheck(1, p)
			}
		}
	default:
		for i, p := range sym.Args {
			if p.Kind == spec.PatVar {
				varCheck(i, p.Var, p.Indirect)
			} else {
				staticCheck(i, p)
			}
		}
		if sym.Kind == automata.KindFuncExit && sym.Ret != nil {
			retReg := nparams - 1
			if p := *sym.Ret; p.Kind == spec.PatVar {
				varCheck(retReg, p.Var, p.Indirect)
			} else {
				staticCheck(retReg, p)
			}
		}
	}

	// Key population: capture values in capture order.
	var capArgs []int
	for _, c := range sym.Captures {
		var reg int
		switch c.Src {
		case automata.CapArg:
			reg = c.Index
		case automata.CapRet:
			reg = nparams - 1
		case automata.CapTarget:
			reg = 0
		case automata.CapValue:
			reg = 1
		default:
			continue
		}
		reg = loadIndirect(reg, c.Indirect)
		capArgs = append(capArgs, reg)
	}
	upd := f.NewReg()
	emit(ir.Instr{
		Op:   ir.OpCall,
		Dst:  upd,
		Sym:  "__tesla_update",
		Imm:  int64(autoIdx)<<16 | int64(sym.ID),
		Args: capArgs,
	})
	one := f.NewReg()
	emit(ir.Instr{Op: ir.OpConst, Dst: one, Imm: 1})
	emit(ir.Instr{Op: ir.OpRet, X: one, HasX: true})

	ins.mod.Funcs = append(ins.mod.Funcs, f)
	return name
}
