package bench

import (
	"fmt"
	"io"

	"tesla/internal/core"
	"tesla/internal/kernel"
	"tesla/internal/monitor"
)

// Fig9 drives a poll-heavy workload through the kernel and emits the
// figure 9 automaton — the MAC socket-poll assertion — as a Graphviz graph
// whose transitions are weighted according to their occurrence at run time.
func Fig9(w io.Writer, syscalls int) error {
	autos, err := kernel.CompileAssertions(kernel.SetMS)
	if err != nil {
		return err
	}
	h := core.NewCountingHandler()
	mon, err := monitor.New(monitor.Options{Handler: h}, autos...)
	if err != nil {
		return err
	}
	k := kernel.New(kernel.Config{Monitor: mon})
	th := k.NewThread()
	pair, err := kernel.SetupOLTP(th)
	if err != nil {
		return err
	}
	for i := 0; i < syscalls; i++ {
		switch i % 4 {
		case 0, 1:
			th.Poll(pair.Client)
		case 2:
			th.Select(pair.Client)
		default:
			// A syscall that never touches the socket: the automaton
			// inits and cleans up along the bypass edge.
			th.Stat("/")
		}
	}

	for _, a := range autos {
		if a.Name == "MS:sopoll_generic" {
			fmt.Fprintln(w, a.Dot(h.Edges()))
			return nil
		}
	}
	return fmt.Errorf("bench: sopoll automaton missing")
}
