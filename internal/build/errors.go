package build

import "strings"

// ErrorList aggregates per-node diagnostics. The graph does not stop at
// the first failing file: every parse error (and, once parsing succeeds,
// every compile error) across the program is collected, each carrying its
// file:line position from the front end.
type ErrorList struct {
	Errs []error
}

func (e *ErrorList) Error() string {
	if len(e.Errs) == 1 {
		return e.Errs[0].Error()
	}
	var b strings.Builder
	for i, err := range e.Errs {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(err.Error())
	}
	return b.String()
}

// Unwrap exposes the individual diagnostics to errors.Is/As and to
// multi-error-aware printers.
func (e *ErrorList) Unwrap() []error { return e.Errs }

// buildError wraps the collected diagnostics: one error stays bare so
// single-failure behaviour matches the sequential pipeline's exactly.
func buildError(errs []error) error {
	switch len(errs) {
	case 0:
		return nil
	case 1:
		return errs[0]
	}
	return &ErrorList{Errs: errs}
}
