package agg

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tesla/internal/trace"
)

// Durability-plane tests: exactly-once delivery across connection faults
// and crashes, snapshot/restore fidelity, the idle-connection reaper, and
// race-safe client shutdown.

// ---------------------------------------------------------------------
// Connection fault injection (the ClientOpts.wrapConn seam).

// flakyConn fails the Nth sequenced-trace write AFTER the bytes reached
// the wire — the exact shape of the PR 7 double-count bug, where a write
// error masked a successful delivery and the retry was ingested twice.
type flakyConn struct {
	net.Conn
	mu     sync.Mutex
	seqN   int
	failAt int
	fired  *atomic.Bool
}

func (f *flakyConn) Write(b []byte) (int, error) {
	n, err := f.Conn.Write(b)
	if err != nil || len(b) == 0 || b[0] != FrameSeqTrace {
		return n, err
	}
	f.mu.Lock()
	f.seqN++
	hit := f.seqN == f.failAt
	f.mu.Unlock()
	if hit && f.fired.CompareAndSwap(false, true) {
		// The frame is fully on the wire, but the caller sees a failure.
		f.Conn.Close()
		return n, fmt.Errorf("injected: connection reset after the write landed")
	}
	return n, err
}

// TestResendDeduplicated pins the double-count regression: a trace write
// that reaches the server but reports an error is resent on the next
// connection, and the server's sequence dedup ingests it exactly once.
func TestResendDeduplicated(t *testing.T) {
	srv, sock := startServer(t, ServerOpts{})
	var fired atomic.Bool
	c, err := Dial(sock, ClientOpts{
		Tool: "t", Process: "flaky", Backoff: 5 * time.Millisecond,
		wrapConn: func(conn net.Conn) net.Conn {
			return &flakyConn{Conn: conn, failAt: 3, fired: &fired}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const frames, per = 8, 16
	for i := 0; i < frames; i++ {
		if err := c.SendTrace(producerTrace(uint64(i*100), per)); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // let the writer hit the fault mid-stream
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if !fired.Load() {
		t.Fatal("fault never fired; the regression went unexercised")
	}
	st := c.Stats()
	if st.Reconnects == 0 {
		t.Fatal("expected a reconnect after the injected reset")
	}
	var ps ProducerStat
	waitFor(t, "flaky accounted", func() bool {
		for _, p := range srv.Store().Fleet().Producers {
			if p.Process == "flaky" && p.Clean {
				ps = p
				return true
			}
		}
		return false
	})
	// Exactly once: every event ingested once, the resent frame visible
	// only in the dup counters, and ingested + dropped == sent exactly.
	if ps.Events != frames*per {
		t.Fatalf("ingested %d events, want exactly %d (dup leak or loss)", ps.Events, frames*per)
	}
	if ps.DupFrames == 0 {
		t.Fatalf("expected the resend to be observed as a dedup, got %+v", ps)
	}
	if ps.Events+ps.DroppedEvents != ps.SentEvents {
		t.Fatalf("accounting leak: %d + %d != %d", ps.Events, ps.DroppedEvents, ps.SentEvents)
	}
}

// ---------------------------------------------------------------------
// Idle reaping (slow loris).

// TestIdleConnReaped: a producer that completes the handshake and then
// goes silent is disconnected once IdleTimeout passes, freeing its
// goroutine and surfacing as an unclean disconnect.
func TestIdleConnReaped(t *testing.T) {
	srv, sock := startServer(t, ServerOpts{IdleTimeout: 50 * time.Millisecond})
	conn, err := net.Dial(SplitAddr(sock))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(Magic)); err != nil {
		t.Fatal(err)
	}
	hello, _ := json.Marshal(Hello{Proto: ProtoVersion, Codec: trace.Version, Tool: "loris", Process: "loris"})
	fw := trace.NewFrameWriter(conn)
	if err := fw.Frame(FrameHello, hello); err != nil {
		t.Fatal(err)
	}
	if _, _, err := trace.NewFrameReader(conn).Next(); err != nil {
		t.Fatalf("handshake: %v", err)
	}
	// ... and now say nothing. The server must hang up on us.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	for {
		if _, err := conn.Read(make([]byte, 64)); err != nil {
			break
		}
	}
	if waited := time.Since(start); waited > 3*time.Second {
		t.Fatalf("server kept the idle connection for %v", waited)
	}
	waitFor(t, "loris disconnected", func() bool {
		for _, p := range srv.Store().Fleet().Producers {
			if p.Process == "loris" && !p.Connected && p.Disconnects == 1 {
				return true
			}
		}
		return false
	})
}

// ---------------------------------------------------------------------
// Race-safe Close.

// TestCloseIdempotent: Close may be called twice, concurrently, and
// racing in-flight SendTrace calls; every caller gets the same verdict
// and nothing panics (the previous client closed a channel here).
func TestCloseIdempotent(t *testing.T) {
	_, sock := startServer(t, ServerOpts{})
	c, err := Dial(sock, ClientOpts{Tool: "t", Process: "races"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c.SendTrace(producerTrace(uint64(i*1000+j), 4))
			}
		}(i)
		go func() {
			defer wg.Done()
			c.Close()
		}()
	}
	wg.Wait()
	if err := c.Close(); err != nil {
		t.Fatalf("late Close: %v", err)
	}
}

// ---------------------------------------------------------------------
// Snapshot / restore.

// ingestFleet pushes a deterministic mixed load through a live server.
func ingestFleet(t *testing.T, sock string, procs int) {
	t.Helper()
	for p := 0; p < procs; p++ {
		c, err := Dial(sock, ClientOpts{Tool: "t", Process: fmt.Sprintf("proc-%d", p)})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if err := c.SendTrace(producerTrace(uint64(p*10000+i*100), 12)); err != nil {
				t.Fatal(err)
			}
		}
		c.SendHealth(nil)
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSnapshotRoundTrip: snapshot a populated store, restore it into a
// fresh one, and require every query surface to answer identically. Two
// consecutive snapshots of an idle store must be byte-identical.
func TestSnapshotRoundTrip(t *testing.T) {
	srv, sock := startServer(t, ServerOpts{})
	ingestFleet(t, sock, 3)
	st := srv.Store()
	waitFor(t, "fleet clean", func() bool { return st.Fleet().CleanProducers == 3 })

	path := filepath.Join(t.TempDir(), "agg.snap")
	if _, err := st.WriteSnapshot(path); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("snapshot file missing after write")
	}
	restored := NewStore(StoreOpts{Seed: 7})
	restored.Restore(snap)

	type surface struct {
		name string
		get  func(*Store) any
	}
	for _, sf := range []surface{
		{"fleet", func(s *Store) any { return s.Fleet() }},
		{"failures", func(s *Store) any { return s.Failures() }},
		{"health", func(s *Store) any { return s.Health() }},
		{"topk", func(s *Store) any { return s.TopK("lock", 5) }},
		{"samples", func(s *Store) any { return s.Samples("lock") }},
	} {
		want, _ := json.Marshal(sf.get(st))
		got, _ := json.Marshal(sf.get(restored))
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s diverged after restore:\n want %s\n  got %s", sf.name, want, got)
		}
	}

	// Idempotence: snapshotting the restored store reproduces the file.
	path2 := filepath.Join(t.TempDir(), "agg2.snap")
	if _, err := restored.WriteSnapshot(path2); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(st.Snapshot())
	b, _ := json.Marshal(restored.Snapshot())
	if string(a) != string(b) {
		t.Fatalf("re-snapshot diverged:\n%s\n%s", a, b)
	}
}

// TestDurableAcks: with snapshots enabled the server only acks what a
// snapshot has persisted, so a client never prunes a frame the server
// could still lose to a crash.
func TestDurableAcks(t *testing.T) {
	store := NewStore(StoreOpts{})
	tr := producerTrace(0, 4)
	payload := tracePayloadFor(t, tr)
	if !store.BeginSeqFrame("p", 1, 4) {
		t.Fatal("fresh frame rejected")
	}
	if err := store.ApplySeqFrame("p", 1, payload); err != nil {
		t.Fatal(err)
	}
	if got := store.AckSeq("p"); got != 1 {
		t.Fatalf("volatile ack = %d, want 1", got)
	}
	store.SetDurable(true)
	if got := store.AckSeq("p"); got != 0 {
		t.Fatalf("durable ack before any snapshot = %d, want 0", got)
	}
	if _, err := store.WriteSnapshot(filepath.Join(t.TempDir(), "s.snap")); err != nil {
		t.Fatal(err)
	}
	if got := store.AckSeq("p"); got != 1 {
		t.Fatalf("durable ack after snapshot = %d, want 1", got)
	}
}

func tracePayloadFor(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	return encodeTracePayload(t, tr)
}

// ---------------------------------------------------------------------
// Protocol compatibility.

// TestV1ProducerAccepted: an old producer speaking proto v1 with
// unsequenced frames is still ingested (without dedup or acks).
func TestV1ProducerAccepted(t *testing.T) {
	srv, sock := startServer(t, ServerOpts{})
	conn, err := net.Dial(SplitAddr(sock))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte(Magic))
	fw := trace.NewFrameWriter(conn)
	hello, _ := json.Marshal(Hello{Proto: 1, Codec: trace.Version, Tool: "old", Process: "v1"})
	if err := fw.Frame(FrameHello, hello); err != nil {
		t.Fatal(err)
	}
	var ack HelloAck
	_, payload, err := trace.NewFrameReader(conn).Next()
	if err != nil {
		t.Fatal(err)
	}
	json.Unmarshal(payload, &ack)
	if !ack.OK {
		t.Fatalf("v1 hello rejected: %s", ack.Message)
	}
	tr := producerTrace(0, 8)
	body := encodeTracePayload(t, tr)
	if err := fw.Frame(FrameTrace, body); err != nil {
		t.Fatal(err)
	}
	bye, _ := json.Marshal(Bye{SentFrames: 1, SentEvents: 8})
	if err := fw.Frame(FrameBye, bye); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "v1 ingested", func() bool {
		for _, p := range srv.Store().Fleet().Producers {
			if p.Process == "v1" && p.Clean && p.Events == 8 {
				return true
			}
		}
		return false
	})
}

func encodeTracePayload(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf []byte
	buf = append(buf, byte(len(tr.Events)))
	w := &sliceWriter{buf: buf}
	if err := trace.Write(w, tr); err != nil {
		t.Fatal(err)
	}
	return w.buf
}

type sliceWriter struct{ buf []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// ---------------------------------------------------------------------
// Randomized crash schedules.

// crashSchedule is one randomized run: a spooling producer streams
// frames while connections are reset, the server is crash-restarted from
// its latest snapshot, and the run ends either cleanly or as a producer
// crash closed later by ResumeSpool. The invariants hold regardless of
// where the kills landed:
//
//   - never more: ingested events never exceed the loss-free oracle
//     (double-ingest would break this);
//   - exact accounting: ingested + server-dropped == sent for the final
//     (clean) bye;
//   - with an ample queue and a successful resume, ingested == oracle
//     exactly — nothing was lost either.
func crashSchedule(t *testing.T, seed int64) (killPoints int) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	sock := filepath.Join(dir, "agg.sock")
	snapPath := filepath.Join(dir, "agg.snap")
	spoolDir := filepath.Join(dir, "spool")

	var srv *Server
	var srvLn net.Listener
	newServer := func() {
		ln, err := Listen(sock)
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		store := NewStore(StoreOpts{Seed: 7})
		snap, err := LoadSnapshot(snapPath)
		if err != nil {
			t.Fatalf("load snapshot: %v", err)
		}
		store.Restore(snap)
		srv = NewServer(store, ServerOpts{Queue: 256})
		srv.SnapshotEvery(snapPath, 5*time.Millisecond)
		srvLn = ln
		go srv.Serve(ln)
	}
	stopServer := func() {
		srv.Close()
		// Close may race Serve's listener registration; closing the
		// listener directly guarantees the socket file is unlinked
		// before the next bind.
		srvLn.Close()
	}
	newServer()

	var connMu sync.Mutex
	var conns []net.Conn
	var dead atomic.Bool // producer "crashed": all its future dials fail
	spool, err := trace.OpenSpool(spoolDir, trace.SpoolOpts{Sync: trace.SpoolSyncNone})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(sock, ClientOpts{
		Tool: "t", Process: "crashy", Buffer: 4,
		Retries: 3, Backoff: 2 * time.Millisecond, Spool: spool,
		wrapConn: func(conn net.Conn) net.Conn {
			if dead.Load() {
				conn.Close()
				return conn
			}
			connMu.Lock()
			conns = append(conns, conn)
			connMu.Unlock()
			return conn
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	killConns := func() {
		connMu.Lock()
		for _, cn := range conns {
			cn.Close()
		}
		conns = conns[:0]
		connMu.Unlock()
	}

	frames := 10 + rng.Intn(30)
	var oracle uint64
	for i := 0; i < frames; i++ {
		n := 1 + rng.Intn(24)
		oracle += uint64(n)
		if err := c.SendTrace(producerTrace(uint64(i*1000), n)); err != nil {
			t.Fatal(err)
		}
		switch rng.Intn(10) {
		case 0: // connection reset mid-stream
			killConns()
			killPoints++
		case 1: // server crash + restart from the latest snapshot
			stopServer()
			killPoints++
			newServer()
		case 2:
			time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
		}
	}

	producerCrashed := rng.Intn(3) == 0
	if producerCrashed {
		// A producer crash: its connections die, every redial fails, and
		// its client state is gone; only the spool survives. The doomed
		// Close stands in for process death — its drain fails fast and
		// the bye never gets out.
		dead.Store(true)
		stopServer()
		killPoints++
		killConns()
		c.Close()
		newServer()
		if _, err := ResumeSpool(sock, "crashy", spoolDir, ResumeOpts{}); err != nil {
			t.Fatalf("resume: %v", err)
		}
	} else {
		if err := c.Close(); err != nil {
			t.Fatalf("clean close: %v", err)
		}
	}

	st := srv.Store()
	var ps ProducerStat
	// A generous deadline: under the race detector with fsync-heavy
	// snapshot loops the drain can take a while; correctness, not
	// latency, is under test here.
	deadline := time.Now().Add(30 * time.Second)
	for {
		for _, p := range st.Fleet().Producers {
			if p.Process == "crashy" && p.Clean {
				ps = p
			}
		}
		if ps.Process != "" || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if ps.Process == "" {
		t.Fatalf("seed %d: producer never closed cleanly", seed)
	}
	if ps.Events > oracle {
		t.Fatalf("seed %d: ingested %d events > oracle %d — double-ingest", seed, ps.Events, oracle)
	}
	if ps.Events+ps.DroppedEvents != ps.SentEvents {
		t.Fatalf("seed %d: accounting leak: ingested %d + dropped %d != sent %d",
			seed, ps.Events, ps.DroppedEvents, ps.SentEvents)
	}
	if producerCrashed {
		// The spool held every frame, so the resume's bye totals are the
		// oracle itself and nothing may be missing.
		if ps.SentEvents != oracle {
			t.Fatalf("seed %d: resume reported %d sent events, oracle %d", seed, ps.SentEvents, oracle)
		}
		if ps.Events+ps.DroppedEvents != oracle {
			t.Fatalf("seed %d: lost events: %d + %d != %d", seed, ps.Events, ps.DroppedEvents, oracle)
		}
	} else if c.Stats().DroppedFrames == 0 && ps.DroppedEvents == 0 && ps.Events != oracle {
		t.Fatalf("seed %d: loss-free run ingested %d != oracle %d", seed, ps.Events, oracle)
	}
	srv.Close()
	return killPoints
}

// TestCrashSchedules runs enough randomized schedules to cover well over
// the gate's required kill-point count, with deterministic seeds so a
// failure names its schedule.
func TestCrashSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("crash schedules are the crash-gate's long pole")
	}
	total := 0
	for seed := int64(1); seed <= crashSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			total += crashSchedule(t, seed)
		})
	}
	t.Logf("crash schedules covered %d kill points", total)
}
