package build_test

// Scheduler tests: the worker pool must produce identical results at every
// parallelism level, tolerate many concurrent builds sharing one cache,
// and schedule every node exactly once. Run under -race by `make race`.

import (
	"fmt"
	"sync"
	"testing"

	"tesla/internal/bench"
	"tesla/internal/build"
)

func TestParallelBuildsDeterministic(t *testing.T) {
	sources := bench.OpenSSLCodebase(10, 4)
	var want string
	for _, jobs := range []int{1, 2, 4, 8, 32} {
		res, err := build.Run(sources, build.Options{Instrument: true, Jobs: jobs})
		if err != nil {
			t.Fatalf("-j%d: %v", jobs, err)
		}
		got := res.Program.String()
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("-j%d produced a different program", jobs)
		}
	}
}

// TestConcurrentBuildsSharedCache hammers one disk-backed cache from many
// goroutines building overlapping programs — exercising the memory map,
// the atomic object writes and the scheduler together.
func TestConcurrentBuildsSharedCache(t *testing.T) {
	cache, err := build.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := bench.OpenSSLCodebase(6, 3)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sources := map[string]string{}
			for k, v := range base {
				sources[k] = v
			}
			// Half the builders touch one file so hits and misses race.
			if i%2 == 1 {
				sources["extra.c"] = fmt.Sprintf("int extra_%d(int x) { return x + %d; }\n", i%4, i%4)
			}
			res, err := build.Run(sources, build.Options{Instrument: true, Jobs: 4, Cache: cache})
			if err != nil {
				errs <- err
				return
			}
			if res.Program == nil || len(res.Autos) != 1 {
				errs <- fmt.Errorf("builder %d: bad result", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestEveryNodeScheduledOnce: the dependency counter must release each
// node exactly once — no node may stay pending or run twice.
func TestEveryNodeScheduledOnce(t *testing.T) {
	sources := bench.OpenSSLCodebase(8, 3)
	res, err := build.Run(sources, build.Options{Instrument: true, Check: true, Elide: true, Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, n := range res.Nodes {
		seen[n.ID]++
		if n.Status == build.StatusSkipped {
			t.Errorf("%s skipped in a successful build", n.ID)
		}
	}
	for id, c := range seen {
		if c != 1 {
			t.Errorf("%s reported %d times", id, c)
		}
	}
	// Per file: parse record + iface + compile + analyse + instrument,
	// plus combine/automata/engine/rawlink/check/link.
	files := len(sources)
	want := files /*parse*/ + 4*files + 6
	if len(res.Nodes) != want {
		t.Errorf("node count = %d, want %d", len(res.Nodes), want)
	}
}
