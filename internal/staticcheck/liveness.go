package staticcheck

import (
	"fmt"
	"sort"
	"strings"

	"tesla/internal/automata"
	"tesla/internal/ir"
)

// The liveness refinement pass: a second product walk whose states carry,
// besides the abstract monitor configuration, the compile-time-known
// values of non-escaped stack slots. Constant propagation prunes
// infeasible branches (so the zero-trip path of a counted loop stops
// blocking «eventually» proofs), syntactic ranking on counted loops
// drives widening (so the walk terminates without giving up precision at
// the first back edge), and every place the proof still fails is recorded
// as a structured Obligation — the missing □◇ fairness assumption —
// instead of a bare NEEDS-RUNTIME.
//
// Soundness rests on two VM facts mirrored exactly here: addresses are
// object-granular and bounds-checked (a computed pointer can never reach
// a stack slot whose address was not taken, so non-escaped alloca cells
// are unaliasable), and evalBin's semantics (wrapping int64 arithmetic,
// 0/1 comparisons, division by zero is a VM error, not a value).

// cval is an abstract integer: a known compile-time constant or ⊤.
type cval struct {
	v  int64
	ok bool
}

func (c cval) String() string {
	if !c.ok {
		return "⊤"
	}
	return fmt.Sprintf("%d", c.v)
}

// cvalsKey canonicalises a call's abstract arguments for summary keys.
func cvalsKey(args []cval) string {
	if len(args) == 0 {
		return ""
	}
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}

// countedLoop is a natural loop whose header tests a ranked counter slot
// against a loop-invariant bound and whose every cycle steps the counter
// toward the exit — the syntactic ranking function f(state) = |bound −
// counter| strictly decreases along every back edge (back-edge variance),
// so the loop terminates whenever the guard is exact.
type countedLoop struct {
	loop ir.NaturalLoop
	// counter is the alloca-site register of the ranked slot.
	counter int
	// step is the signed per-iteration increment.
	step int64
}

// fnInfo is the per-function static information the refinement pass
// needs, computed once per checker and shared across activations.
type fnInfo struct {
	f *ir.Func
	// allocas are the alloca-site destination registers.
	allocas map[int]bool
	// escaped are alloca registers whose address leaves the load/store
	// discipline (stored, passed, returned, compared…): their cells may
	// be written through pointers, so they are never tracked.
	escaped map[int]bool
	// loops maps header block → recognised counted loop.
	loops map[int]*countedLoop
}

func (c *checker) infoFor(f *ir.Func) *fnInfo {
	if fi, ok := c.infos[f.Name]; ok {
		return fi
	}
	fi := &fnInfo{f: f, allocas: map[int]bool{}, escaped: map[int]bool{}, loops: map[int]*countedLoop{}}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca {
				fi.allocas[in.Dst] = true
			}
		}
	}
	// Escape analysis: the only uses that keep a slot private are OpLoad
	// and OpStore with the slot register as the address operand.
	use := func(r int) {
		if fi.allocas[r] {
			fi.escaped[r] = true
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad:
				// X is the address: a private use.
			case ir.OpStore:
				use(in.Y) // storing a slot's address publishes it
			case ir.OpFieldAddr, ir.OpFieldStore:
				use(in.X)
				use(in.Y)
			case ir.OpBin:
				use(in.X)
				use(in.Y)
			case ir.OpCall, ir.OpCallPtr:
				if in.Op == ir.OpCallPtr {
					use(in.X)
				}
				for _, a := range in.Args {
					use(a)
				}
			case ir.OpRet:
				if in.HasX {
					use(in.X)
				}
			case ir.OpCondBr:
				use(in.X)
			}
		}
	}
	for _, l := range f.Loops() {
		l := l
		if cl := recogniseCountedLoop(fi, l); cl != nil {
			fi.loops[l.Head] = cl
		}
	}
	c.infos[f.Name] = fi
	return fi
}

// recogniseCountedLoop matches the header-test-and-step shape the front
// end emits for `while (i < n) { …; i = i + c; }` (and its Le/Gt/Ge and
// mirrored-operand variants):
//
//   - the header computes cmp(load counter, bound) and conditionally
//     branches on it, with exactly one of the two targets outside the
//     loop;
//   - bound is a constant or a load of a slot never stored inside the
//     loop (loop-invariant);
//   - the counter slot is non-escaped; every store to it inside the loop
//     is `counter = load(counter) ± const`, every cycle back to the
//     header passes such a store, and the step's sign moves the counter
//     toward the exit under the continue condition.
func recogniseCountedLoop(fi *fnInfo, l ir.NaturalLoop) *countedLoop {
	f := fi.f
	head := f.Blocks[l.Head]
	if len(head.Instrs) == 0 {
		return nil
	}
	term := head.Instrs[len(head.Instrs)-1]
	if term.Op != ir.OpCondBr {
		return nil
	}
	in1, in2 := l.Contains(term.Blk1), l.Contains(term.Blk2)
	if in1 == in2 {
		return nil // both targets in (or out of) the loop: not the shape
	}

	// Local def map for the header block.
	defs := map[int]ir.Instr{}
	for _, in := range head.Instrs {
		switch in.Op {
		case ir.OpConst, ir.OpLoad, ir.OpBin:
			defs[in.Dst] = in
		}
	}
	cmp, ok := defs[term.X]
	if !ok || cmp.Op != ir.OpBin {
		return nil
	}
	kind := cmp.Imm2Bin()
	switch kind {
	case ir.BinLt, ir.BinLe, ir.BinGt, ir.BinGe:
	default:
		return nil
	}

	// Identify which comparison operand loads the counter slot: the one
	// whose slot is stored inside the loop. The other must be invariant.
	slotOf := func(r int) (int, bool) {
		d, ok := defs[r]
		if !ok || d.Op != ir.OpLoad || !fi.allocas[d.X] || fi.escaped[d.X] {
			return 0, false
		}
		return d.X, true
	}
	storedInLoop := func(slot int) bool {
		for _, b := range l.Blocks {
			for _, in := range f.Blocks[b].Instrs {
				if in.Op == ir.OpStore && in.X == slot {
					return true
				}
			}
		}
		return false
	}
	invariant := func(r int) bool {
		d, ok := defs[r]
		if !ok {
			return false
		}
		if d.Op == ir.OpConst {
			return true
		}
		if slot, ok := slotOf(r); ok {
			return !storedInLoop(slot)
		}
		return false
	}

	counter, mirrored := -1, false
	if slot, ok := slotOf(cmp.X); ok && storedInLoop(slot) && invariant(cmp.Y) {
		counter = slot
	} else if slot, ok := slotOf(cmp.Y); ok && storedInLoop(slot) && invariant(cmp.X) {
		counter, mirrored = slot, true
	}
	if counter < 0 {
		return nil
	}

	// Every store to the counter inside the loop must be a constant step
	// of one sign; blocks holding such a store must cut every cycle.
	step, stepBlocks, ok := counterSteps(fi, l, counter)
	if !ok {
		return nil
	}
	if cycleAvoids(f, l, stepBlocks) {
		return nil
	}

	// Back-edge variance: the step must move the counter toward the
	// exit under the continue condition. Normalise to "loop continues
	// while counter REL bound".
	rel := kind
	if mirrored {
		rel = swapCmp(rel)
	}
	if !in1 { // the true edge leaves the loop: continue on the negation
		rel = negateCmp(rel)
	}
	switch rel {
	case ir.BinLt, ir.BinLe:
		if step <= 0 {
			return nil
		}
	case ir.BinGt, ir.BinGe:
		if step >= 0 {
			return nil
		}
	}
	return &countedLoop{loop: l, counter: counter, step: step}
}

// counterSteps checks every in-loop store to the counter slot is
// `counter = load(counter) ± const` (resolved within the storing block)
// with one common sign, returning the first step value and the set of
// blocks containing a step.
func counterSteps(fi *fnInfo, l ir.NaturalLoop, counter int) (int64, map[int]bool, bool) {
	f := fi.f
	blocks := map[int]bool{}
	var step int64
	found := false
	for _, bi := range l.Blocks {
		defs := map[int]ir.Instr{}
		for _, in := range f.Blocks[bi].Instrs {
			switch in.Op {
			case ir.OpConst, ir.OpLoad, ir.OpBin:
				defs[in.Dst] = in
			case ir.OpStore:
				if in.X != counter {
					continue
				}
				d, ok := defs[in.Y]
				if !ok || d.Op != ir.OpBin {
					return 0, nil, false
				}
				var s int64
				switch d.Imm2Bin() {
				case ir.BinAdd:
					s = 1
				case ir.BinSub:
					s = -1
				default:
					return 0, nil, false
				}
				ld, lok := defs[d.X]
				cst, cok := defs[d.Y]
				if !lok || !cok || ld.Op != ir.OpLoad || ld.X != counter || cst.Op != ir.OpConst {
					return 0, nil, false
				}
				s *= cst.Imm
				if s == 0 {
					return 0, nil, false
				}
				if found && (s > 0) != (step > 0) {
					return 0, nil, false
				}
				if !found {
					step = s
				}
				found = true
				blocks[bi] = true
			}
		}
	}
	return step, blocks, found
}

// cycleAvoids reports whether some cycle through the loop header skips
// every step block: flood from the header through loop blocks minus the
// step blocks and see whether a latch is still reachable.
func cycleAvoids(f *ir.Func, l ir.NaturalLoop, stepBlocks map[int]bool) bool {
	latch := map[int]bool{}
	for _, b := range l.Latches {
		latch[b] = true
	}
	seen := map[int]bool{}
	stack := []int{l.Head}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[b] || stepBlocks[b] {
			continue
		}
		seen[b] = true
		if latch[b] {
			return true
		}
		for _, s := range f.Succs(b) {
			if l.Contains(s) && !seen[s] {
				stack = append(stack, s)
			}
		}
	}
	return false
}

func swapCmp(k ir.BinKind) ir.BinKind {
	switch k {
	case ir.BinLt:
		return ir.BinGt
	case ir.BinLe:
		return ir.BinGe
	case ir.BinGt:
		return ir.BinLt
	default:
		return ir.BinLe
	}
}

func negateCmp(k ir.BinKind) ir.BinKind {
	switch k {
	case ir.BinLt:
		return ir.BinGe
	case ir.BinLe:
		return ir.BinGt
	case ir.BinGt:
		return ir.BinLe
	default:
		return ir.BinLt
	}
}

// frame is the value half of a refined product state: block-local
// register constants plus the known values of the activation's private
// stack slots. nil frames (safety pass) are inert.
type frame struct {
	info *fnInfo
	// regs maps virtual registers to known constants; reset at block
	// entry (cross-block dataflow goes through allocas at -O0).
	regs map[int]int64
	// cells maps non-escaped alloca-site registers to known slot values;
	// absence means ⊤.
	cells map[int]int64
}

func newFrame(info *fnInfo) *frame {
	return &frame{info: info, regs: map[int]int64{}, cells: map[int]int64{}}
}

func (fr *frame) reg(r int) cval {
	v, ok := fr.regs[r]
	return cval{v, ok}
}

// enterBlock clones the frame for a successor block, dropping the
// block-local register constants.
func (fr *frame) enterBlock() *frame {
	nf := &frame{info: fr.info, regs: map[int]int64{}, cells: make(map[int]int64, len(fr.cells))}
	for k, v := range fr.cells {
		nf.cells[k] = v
	}
	return nf
}

// clone copies the frame including registers (same-block fan-out).
func (fr *frame) clone() *frame {
	nf := &frame{info: fr.info, regs: make(map[int]int64, len(fr.regs)), cells: make(map[int]int64, len(fr.cells))}
	for k, v := range fr.regs {
		nf.regs[k] = v
	}
	for k, v := range fr.cells {
		nf.cells[k] = v
	}
	return nf
}

// key canonicalises the cells (the only cross-block value state).
func (fr *frame) key() string {
	if len(fr.cells) == 0 {
		return ""
	}
	ks := make([]int, 0, len(fr.cells))
	for k := range fr.cells {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	parts := make([]string, len(ks))
	for i, k := range ks {
		parts[i] = fmt.Sprintf("%d=%d", k, fr.cells[k])
	}
	return strings.Join(parts, ",")
}

// step applies one non-control instruction's value effect. It returns
// false when the instruction is statically guaranteed to abort the VM
// (division by zero): the path ends there.
func (fr *frame) step(in ir.Instr) bool {
	switch in.Op {
	case ir.OpConst:
		fr.regs[in.Dst] = in.Imm
	case ir.OpAlloca:
		// A fresh activation of the slot: the address register is not a
		// constant and the cell restarts unknown (declarations store
		// their initialiser right after).
		delete(fr.regs, in.Dst)
		delete(fr.cells, in.Dst)
	case ir.OpLoad:
		if v, ok := fr.cells[in.X]; ok && fr.info.allocas[in.X] && !fr.info.escaped[in.X] {
			fr.regs[in.Dst] = v
		} else {
			delete(fr.regs, in.Dst)
		}
	case ir.OpStore:
		if fr.info.allocas[in.X] && !fr.info.escaped[in.X] {
			if v, ok := fr.regs[in.Y]; ok {
				fr.cells[in.X] = v
			} else {
				delete(fr.cells, in.X)
			}
		}
		// A store through a computed or escaped address can only reach
		// escaped slots, globals or heap objects — none are tracked.
	case ir.OpBin:
		x, xok := fr.regs[in.X]
		y, yok := fr.regs[in.Y]
		kind := in.Imm2Bin()
		if (kind == ir.BinDiv || kind == ir.BinRem) && yok && y == 0 {
			return false // the VM reports division by zero and unwinds
		}
		if xok && yok {
			fr.regs[in.Dst] = foldBin(kind, x, y)
		} else {
			delete(fr.regs, in.Dst)
		}
	default:
		// Address producers, heap allocation, calls: result unknown.
		if in.Dst >= 0 {
			delete(fr.regs, in.Dst)
		}
	}
	return true
}

// foldBin mirrors vm.evalBin exactly for the defined cases (div/rem by
// zero is handled — as a path end — before folding).
func foldBin(kind ir.BinKind, a, b int64) int64 {
	b2i := func(v bool) int64 {
		if v {
			return 1
		}
		return 0
	}
	switch kind {
	case ir.BinAdd:
		return a + b
	case ir.BinSub:
		return a - b
	case ir.BinMul:
		return a * b
	case ir.BinDiv:
		return a / b
	case ir.BinRem:
		return a % b
	case ir.BinEq:
		return b2i(a == b)
	case ir.BinNe:
		return b2i(a != b)
	case ir.BinLt:
		return b2i(a < b)
	case ir.BinLe:
		return b2i(a <= b)
	case ir.BinGt:
		return b2i(a > b)
	case ir.BinGe:
		return b2i(a >= b)
	case ir.BinAnd:
		return a & b
	case ir.BinOr:
		return a | b
	case ir.BinXor:
		return a ^ b
	}
	return 0
}

// widenBudget is how many distinct value states a (block, monitor-state)
// pair may accumulate before generic widening collapses the cells to
// their common constants. Counted-loop headers never get that far: their
// ranked counter is widened on the second visit.
const widenBudget = 4

// blockHist tracks per-(block, monitor-key) arrivals for widening. Once
// widening starts, wide only ever loses entries, so the walk converges.
type blockHist struct {
	count int
	wide  map[int]int64
}

// widen intersects cells into the running widened value and returns the
// (shared-shape) result.
func (h *blockHist) widen(cells map[int]int64) map[int]int64 {
	if h.wide == nil {
		h.wide = make(map[int]int64, len(cells))
		for k, v := range cells {
			h.wide[k] = v
		}
	} else {
		for k, v := range h.wide {
			if cv, ok := cells[k]; !ok || cv != v {
				delete(h.wide, k)
			}
		}
	}
	out := make(map[int]int64, len(h.wide))
	for k, v := range h.wide {
		out[k] = v
	}
	return out
}

// dischargeSymbols lists the automaton symbols (excluding the bound
// events) with a move from any of the pending states — the events whose
// eventual occurrence would discharge the obligation.
func (c *checker) dischargeSymbols(pending automata.StateSet) []string {
	var out []string
	seen := map[string]bool{}
	for _, sym := range c.auto.Symbols {
		if sym == c.auto.BoundBegin() || sym == c.auto.BoundEnd() || seen[sym.Name] {
			continue
		}
		for _, q := range pending {
			if c.auto.HasMove(q, sym.ID) {
				seen[sym.Name] = true
				out = append(out, sym.Name)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// fairnessFor renders the □◇ assumption that would discharge pending
// states: infinitely often (in every bound epoch), one of the discharge
// events occurs.
func fairnessFor(discharge []string) string {
	if len(discharge) == 0 {
		return ""
	}
	return "□◇ (" + strings.Join(discharge, " ∨ ") + ")"
}
