package core

import (
	"errors"
	"fmt"
)

// ErrOverflow is reported when a class needs more live instances than its
// preallocated block holds. The paper's strategy (§4.4.1) is to report the
// overflow so that preallocation can be adjusted on the next run, rather
// than to allocate dynamically in constrained code paths.
var ErrOverflow = errors.New("tesla: automaton instance table overflow")

// VerdictKind classifies the terminal outcome of an automaton instance.
type VerdictKind int

const (
	// VerdictAccept: the instance reached cleanup in an accepting state.
	VerdictAccept VerdictKind = iota
	// VerdictNoInstance: a required event (assertion site) arrived with a
	// binding for which no instance could take a transition.
	VerdictNoInstance
	// VerdictBadTransition: a strict automaton instance observed an event
	// its current state cannot accept.
	VerdictBadTransition
	// VerdictIncomplete: cleanup fired while an instance was in a
	// non-accepting state — an `eventually` obligation never happened.
	VerdictIncomplete
)

func (k VerdictKind) String() string {
	switch k {
	case VerdictAccept:
		return "accept"
	case VerdictNoInstance:
		return "no-instance"
	case VerdictBadTransition:
		return "bad-transition"
	case VerdictIncomplete:
		return "incomplete"
	default:
		return fmt.Sprintf("VerdictKind(%d)", int(k))
	}
}

// Violation describes a detected mismatch between a temporal assertion and
// actual program behaviour.
type Violation struct {
	Class *Class
	Kind  VerdictKind
	// Key is the event or instance binding involved.
	Key Key
	// State is the instance state at failure (0 for no-instance errors).
	State uint32
	// Symbol names the event that exposed the violation, when known.
	Symbol string
}

// Signature identifies a violation up to the failing assertion and failure
// mode, ignoring the concrete key and state. Trace shrinking uses it to
// decide whether a reduced trace still fails "the same way".
func (v *Violation) Signature() string {
	return v.Class.Name + "/" + v.Kind.String()
}

func (v *Violation) Error() string {
	switch v.Kind {
	case VerdictNoInstance:
		return fmt.Sprintf("tesla: %s: no automaton instance matches %s at required event %q — %s",
			v.Class.Name, v.Key, v.Symbol, v.Class.Description)
	case VerdictBadTransition:
		return fmt.Sprintf("tesla: %s: instance %s in state %d cannot accept event %q — %s",
			v.Class.Name, v.Key, v.State, v.Symbol, v.Class.Description)
	case VerdictIncomplete:
		return fmt.Sprintf("tesla: %s: instance %s still in state %d at cleanup (%q): obligation never satisfied — %s",
			v.Class.Name, v.Key, v.State, v.Symbol, v.Class.Description)
	default:
		return fmt.Sprintf("tesla: %s: verdict %s for %s", v.Class.Name, v.Kind, v.Key)
	}
}
