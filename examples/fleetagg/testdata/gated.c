/*
 * A fleet-shaped fixture: whether the run violates depends on its input.
 * do_work() asserts a prior security_check(x) for its own argument, and
 * main() only performs that check when x is positive — so a process run
 * with a positive argument passes and one run with a non-positive
 * argument violates. Three producers with different arguments give the
 * fleet aggregator a mixed population to attribute.
 */

int security_check(int x) {
	return 0;
}

int do_work(int x) {
	TESLA_WITHIN(main, previously(security_check(x)));
	return x;
}

int main(int x) {
	if (x > 0) {
		int r = security_check(x);
	}
	return do_work(x);
}
