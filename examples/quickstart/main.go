// Quickstart: write a temporal assertion with the Go DSL, monitor a small
// program, and watch TESLA accept correct behaviour and flag a violation.
//
// The property is the paper's figure 1, adapted: within a request handler,
// a security check with the same object and operation must previously have
// succeeded.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/spec"
)

func main() {
	// TESLA_WITHIN(handle_request, previously(
	//     security_check(ANY(ptr), o, op) == 0));
	assertion := spec.Within("quickstart", "handle_request",
		spec.Previously(
			spec.Call("security_check", spec.AnyPtr(), spec.Var("o"), spec.Var("op")).ReturnsInt(0)))

	fmt.Println("assertion:", assertion)

	auto, err := automata.Compile(assertion)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("compiled automaton: %d states, %d symbols, %d variables %v\n\n",
		auto.States, len(auto.Symbols), len(auto.Vars), auto.Vars)

	handler := core.NewCountingHandler()
	mon := monitor.MustNew(monitor.Options{Handler: handler}, auto)
	th := mon.NewThread()

	// A correct request: the check runs (and succeeds) before the object
	// is used at the assertion site.
	object, op := core.Value(7001), core.Value(4)
	th.Call("handle_request")
	th.Call("security_check", 1, object, op)
	th.Return("security_check", 0, 1, object, op)
	th.Site("quickstart", object, op)
	th.Return("handle_request", 0)
	fmt.Printf("request 1 (checked):   violations=%d\n", len(handler.Violations()))

	// A buggy request: the check ran against a different object.
	other := core.Value(9999)
	th.Call("handle_request")
	th.Call("security_check", 1, other, op)
	th.Return("security_check", 0, 1, other, op)
	th.Site("quickstart", object, op)
	th.Return("handle_request", 0)

	vs := handler.Violations()
	fmt.Printf("request 2 (unchecked): violations=%d\n", len(vs))
	for _, v := range vs {
		fmt.Println("  ", v)
	}

	// The automaton, weighted by what actually ran (fig. 9 style).
	fmt.Println("\nrun-time weighted automaton (Graphviz):")
	fmt.Println(auto.Dot(handler.Edges()))
}
