package kernel

import "tesla/internal/core"

// File is an open file description. Ops is the fileops table of figure 3:
// the first layer of indirection between a system call and the code that
// implements it. FCred is the credential cached at open time — passing it
// where the active (thread) credential belongs is the §3.5.2 wrong-
// credential bug.
type File struct {
	ID     core.Value
	Ops    *FileOps
	Vnode  *Vnode
	Socket *Socket
	FCred  *Ucred
}

// FileOps mirrors struct fileops.
type FileOps struct {
	Poll  func(t *Thread, fp *File, activeCred *Ucred, whence PollWhence) int64
	Read  func(t *Thread, fp *File, n int64) int64
	Write func(t *Thread, fp *File, n int64) int64
	Close func(t *Thread, fp *File) int64
}

// PollWhence identifies the dynamic call graph a poll arrived through.
type PollWhence int

const (
	FromPoll PollWhence = iota
	FromSelect
	FromKevent
)

var vnodeFileOps = &FileOps{
	Poll:  vnPoll,
	Read:  vnRead,
	Write: vnWrite,
	Close: vnClose,
}

var socketFileOps = &FileOps{
	Poll:  sooPoll,
	Read:  sooRead,
	Write: sooWrite,
	Close: sooClose,
}

// foPoll is the static inline dispatcher of figure 3.
func (t *Thread) foPoll(fp *File, activeCred *Ucred, whence PollWhence) int64 {
	return fp.Ops.Poll(t, fp, activeCred, whence)
}

// newFd installs a file in the descriptor table.
func (t *Thread) newFd(fp *File) int64 {
	for i, f := range t.fds {
		if f == nil {
			t.fds[i] = fp
			return int64(i)
		}
	}
	if len(t.fds) >= 1024 {
		return -EMFILE
	}
	t.fds = append(t.fds, fp)
	return int64(len(t.fds) - 1)
}

func (t *Thread) fd(n int64) *File {
	if n < 0 || n >= int64(len(t.fds)) {
		return nil
	}
	return t.fds[n]
}

// Vnode-backed file operations.

func vnRead(t *Thread, fp *File, n int64) int64 {
	t.enter("vn_read", fp.ID)
	ret := t.vnRdwr(fp.Vnode, false, n, 0)
	if ret == OK {
		t.site("MF:vn_read_post", fp.Vnode.ID)
	}
	t.exit("vn_read", core.Value(ret), fp.ID)
	return ret
}

func vnWrite(t *Thread, fp *File, n int64) int64 {
	t.enter("vn_write", fp.ID)
	ret := t.vnRdwr(fp.Vnode, true, n, 0)
	t.exit("vn_write", core.Value(ret), fp.ID)
	return ret
}

func vnPoll(t *Thread, fp *File, activeCred *Ucred, whence PollWhence) int64 {
	t.enter("vn_poll", fp.ID)
	ret := t.macVnodeCheck("mac_vnode_check_poll", activeCred, fp.Vnode)
	if ret == OK {
		t.site("MF:vn_poll", fp.Vnode.ID)
	}
	t.exit("vn_poll", core.Value(ret), fp.ID)
	return ret
}

func vnClose(t *Thread, fp *File) int64 {
	t.enter("vn_close", fp.ID)
	t.invariant(fp.Vnode.refs > 0, "vnode over-release")
	fp.Vnode.refs--
	t.exit("vn_close", 0, fp.ID)
	return OK
}
