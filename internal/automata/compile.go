package automata

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"tesla/internal/core"
	"tesla/internal/spec"
)

// Automaton is the compiled form of one TESLA assertion: the automaton
// representation that the analyser stores in .tesla files and that drives
// both the instrumenter and libtesla.
type Automaton struct {
	Name string
	Spec *spec.Assertion

	// Vars are the scope variables, in key-slot order (≤ core.KeySize).
	Vars []string

	// Symbols is the alphabet; Symbols[i].ID == i.
	Symbols []*Symbol

	// States includes state 0 (pre-init) and the final accept state.
	States uint32
	// Start is the state entered by the «init» transition.
	Start uint32
	// Accept is the state entered by «cleanup» transitions.
	Accept uint32

	// Trans[symID] is the transition set driven by that symbol.
	Trans []core.TransitionSet

	// Class is the libtesla class instances of this automaton use.
	Class *core.Class

	// nfa is retained for equivalence testing (DFA vs NFA acceptance).
	nfa *nfaGraph

	// engineOnce/engine hold the lazily-lowered StepEngine (engine.go).
	// The build graph's engine node may install a cached image first via
	// AttachEngine; otherwise the first Engine() call lowers in place.
	engineOnce sync.Once
	engine     *StepEngine
}

// SymbolByName finds an alphabet symbol by display name, or nil.
func (a *Automaton) SymbolByName(name string) *Symbol {
	for _, s := range a.Symbols {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// BoundBegin returns the «init» symbol.
func (a *Automaton) BoundBegin() *Symbol { return a.Symbols[0] }

// BoundEnd returns the «cleanup» symbol.
func (a *Automaton) BoundEnd() *Symbol { return a.Symbols[1] }

// Site returns the assertion-site symbol.
func (a *Automaton) Site() *Symbol { return a.Symbols[2] }

// VarSlot returns the key slot of a scope variable, or -1.
func (a *Automaton) VarSlot(name string) int {
	for i, v := range a.Vars {
		if v == name {
			return i
		}
	}
	return -1
}

// Compile translates an assertion into an automaton, performing the
// recursive descent the paper's analyser does over Clang ASTs (§4.1): the
// expression becomes an NFA over the alphabet of observable events; subset
// construction yields a DFA; «init», «cleanup» and bypass transitions are
// added around it so that, e.g., TESLA_WITHIN(syscall, eventually(foo(x)==0))
// becomes a chain driven by call(syscall), TESLA_ASSERTION_SITE, foo(x)==0
// and returnfrom(syscall), with bypass returnfrom(syscall) transitions for
// code paths that never pass through the assertion site.
func Compile(a *spec.Assertion) (*Automaton, error) {
	if a.Expr == nil {
		return nil, fmt.Errorf("automata: %s: empty assertion expression", a.Name)
	}
	vars := spec.Vars(a.Expr)
	if len(vars) > core.KeySize {
		return nil, fmt.Errorf("automata: %s: %d variables exceed key size %d",
			a.Name, len(vars), core.KeySize)
	}

	auto := &Automaton{Name: a.Name, Spec: a, Vars: vars}
	b := &builder{auto: auto, symIndex: make(map[string]int)}

	var strictFlag core.SymbolFlags
	if a.Strict {
		strictFlag = core.SymStrict
	}

	// Fixed alphabet prefix: bound begin (0), bound end (1), site (2).
	b.addSymbol(&Symbol{
		Name:  a.Bound.Begin.String(),
		Kind:  KindBoundBegin,
		Fn:    a.Bound.Begin.Fn,
		Flags: strictFlag &^ core.SymStrict, // bound events are never strict
	})
	b.addSymbol(&Symbol{
		Name: a.Bound.End.String(),
		Kind: KindBoundEnd,
		Fn:   a.Bound.End.Fn,
	})
	site := &Symbol{
		Name:  "«assertion»",
		Kind:  KindSite,
		Flags: core.SymRequired | strictFlag,
	}
	for i := range vars {
		site.Captures = append(site.Captures, SlotCapture{Slot: i, Src: CapSiteVar, Index: i})
		site.ProvidesMask |= 1 << uint(i)
	}
	b.addSymbol(site)
	b.strictFlag = strictFlag

	// Build the NFA for the normalised expression.
	expr := normalizeSites(a.Expr)
	g := &nfaGraph{}
	frag, err := b.compileExpr(g, expr)
	if err != nil {
		return nil, fmt.Errorf("automata: %s: %w", a.Name, err)
	}
	g.start = frag.start
	g.final = frag.end
	g.computePreSite(siteSymbolID)

	auto.nfa = g
	b.determinize(g, a.Strict)
	auto.Class = &core.Class{
		Name:        a.Name,
		Description: a.String(),
		States:      auto.States,
	}
	return auto, nil
}

// MustCompile is Compile, panicking on error; for statically-known
// assertions (the Go-DSL analogue of compile-time analysis failure).
func MustCompile(a *spec.Assertion) *Automaton {
	auto, err := Compile(a)
	if err != nil {
		panic(err)
	}
	return auto
}

const (
	boundBeginID = 0
	boundEndID   = 1
	siteSymbolID = 2
)

// normalizeSites guarantees the compiled expression mentions the assertion
// site: the TESLA macros are written at a concrete source location, so
// execution reaching that location is always an event. previously/eventually
// already include the site; a bare expression has it appended, and each
// operand of a top-level boolean expression is normalised independently so
// that, e.g., the incallstack branch of figure 7 can satisfy the site on its
// own.
func normalizeSites(e spec.Expr) spec.Expr {
	if be, ok := e.(*spec.BoolExpr); ok {
		ops := make([]spec.Expr, len(be.Exprs))
		for i, op := range be.Exprs {
			ops[i] = normalizeSites(op)
		}
		return &spec.BoolExpr{Op: be.Op, Exprs: ops}
	}
	if containsSite(e) {
		return e
	}
	return &spec.Sequence{Exprs: []spec.Expr{e, &spec.AssertionSite{}}}
}

func containsSite(e spec.Expr) bool {
	found := false
	spec.Walk(e, func(x spec.Expr) {
		if _, ok := x.(*spec.AssertionSite); ok {
			found = true
		}
	})
	return found
}

// nfaGraph is an ε-NFA over symbol IDs.
type nfaGraph struct {
	states  []nstate
	start   int
	final   int
	preSite []bool // state reachable from start without consuming the site
}

type nstate struct {
	eps   []int
	edges []nedge
}

type nedge struct {
	sym int
	to  int
}

func (g *nfaGraph) newState() int {
	g.states = append(g.states, nstate{})
	return len(g.states) - 1
}

func (g *nfaGraph) addEps(from, to int) {
	g.states[from].eps = append(g.states[from].eps, to)
}

func (g *nfaGraph) addEdge(from, sym, to int) {
	g.states[from].edges = append(g.states[from].edges, nedge{sym, to})
}

// computePreSite marks the states reachable from start without traversing a
// site edge. Cleanup (bound end) is legal from such states — the bypass
// transitions of §4.1 — and from accepting states.
func (g *nfaGraph) computePreSite(siteSym int) {
	g.preSite = make([]bool, len(g.states))
	var visit func(int)
	visit = func(s int) {
		if g.preSite[s] {
			return
		}
		g.preSite[s] = true
		for _, t := range g.states[s].eps {
			visit(t)
		}
		for _, e := range g.states[s].edges {
			if e.sym != siteSym {
				visit(e.to)
			}
		}
	}
	visit(g.start)
}

// closure expands a state set with ε-reachability; returns a sorted set.
func (g *nfaGraph) closure(set []int) []int {
	seen := make(map[int]bool, len(set))
	var stack []int
	for _, s := range set {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range g.states[s].eps {
			if !seen[t] {
				seen[t] = true
				stack = append(stack, t)
			}
		}
	}
	out := make([]int, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// accepts simulates the ε-NFA on a symbol string using TESLA's conditional
// semantics (irrelevant events may be skipped by any alternative) — the
// reference model for DFA equivalence testing. A run is accepted when the
// bound ends with some alternative either complete (the final state) or
// never having passed the assertion site (the bypass rule of §4.1).
func (g *nfaGraph) accepts(seq []int, strict bool) bool {
	cur := g.closure([]int{g.start})
	for _, sym := range seq {
		var next []int
		for _, m := range cur {
			moved := false
			for _, e := range g.states[m].edges {
				if e.sym == sym {
					next = append(next, e.to)
					moved = true
				}
			}
			if sym != siteSymbolID && !strict {
				next = append(next, m) // conditional: event may be irrelevant
			} else if !moved && strict {
				// strict: member dies
				_ = moved
			}
		}
		cur = g.closure(next)
		if len(cur) == 0 {
			return false
		}
	}
	for _, m := range cur {
		if m == g.final || g.preSite[m] {
			return true
		}
	}
	return false
}

// builder accumulates the alphabet and compiles expression fragments.
type builder struct {
	auto       *Automaton
	symIndex   map[string]int
	strictFlag core.SymbolFlags
}

func (b *builder) addSymbol(s *Symbol) int {
	s.ID = len(b.auto.Symbols)
	b.auto.Symbols = append(b.auto.Symbols, s)
	return s.ID
}

// symbolFor interns the event as an alphabet symbol.
func (b *builder) symbolFor(e spec.Expr) (int, error) {
	key := e.String()
	if id, ok := b.symIndex[key]; ok {
		return id, nil
	}
	var s *Symbol
	switch ev := e.(type) {
	case *spec.AssertionSite:
		return siteSymbolID, nil
	case *spec.InCallStack:
		s = &Symbol{Name: key, Kind: KindInCallStack, Fn: ev.Fn}
	case *spec.FunctionEvent:
		kind := KindFuncEntry
		if ev.Kind == spec.FuncExit {
			kind = KindFuncExit
		}
		s = &Symbol{
			Name: key,
			Kind: kind,
			Fn:   ev.Fn,
			ObjC: ev.ObjC,
			Side: ev.Side,
			Args: ev.Args,
			Ret:  ev.Ret,
		}
		for i, p := range ev.Args {
			if p.Kind == spec.PatVar {
				slot := b.auto.VarSlot(p.Var)
				s.Captures = append(s.Captures, SlotCapture{Slot: slot, Src: CapArg, Index: i, Indirect: p.Indirect})
				s.ProvidesMask |= 1 << uint(slot)
			}
		}
		if ev.Ret != nil && ev.Ret.Kind == spec.PatVar {
			slot := b.auto.VarSlot(ev.Ret.Var)
			s.Captures = append(s.Captures, SlotCapture{Slot: slot, Src: CapRet, Indirect: ev.Ret.Indirect})
			s.ProvidesMask |= 1 << uint(slot)
		}
	case *spec.FieldAssignEvent:
		s = &Symbol{
			Name:     key,
			Kind:     KindFieldAssign,
			Struct:   ev.Struct,
			Field:    ev.Field,
			AssignOp: ev.Op,
			Target:   ev.Target,
			Value:    ev.Value,
		}
		if ev.Target.Kind == spec.PatVar {
			slot := b.auto.VarSlot(ev.Target.Var)
			s.Captures = append(s.Captures, SlotCapture{Slot: slot, Src: CapTarget})
			s.ProvidesMask |= 1 << uint(slot)
		}
		if ev.Value.Kind == spec.PatVar {
			slot := b.auto.VarSlot(ev.Value.Var)
			s.Captures = append(s.Captures, SlotCapture{Slot: slot, Src: CapValue})
			s.ProvidesMask |= 1 << uint(slot)
		}
	default:
		return 0, fmt.Errorf("expression %s is not a concrete event", key)
	}
	s.Flags |= b.strictFlag
	id := b.addSymbol(s)
	b.symIndex[key] = id
	return id, nil
}

type frag struct {
	start, end int
}

// compileExpr builds the Thompson-style fragment for an expression.
func (b *builder) compileExpr(g *nfaGraph, e spec.Expr) (frag, error) {
	switch x := e.(type) {
	case *spec.Sequence:
		if len(x.Exprs) == 0 {
			s := g.newState()
			return frag{s, s}, nil
		}
		first, err := b.compileExpr(g, x.Exprs[0])
		if err != nil {
			return frag{}, err
		}
		cur := first
		for _, sub := range x.Exprs[1:] {
			next, err := b.compileExpr(g, sub)
			if err != nil {
				return frag{}, err
			}
			g.addEps(cur.end, next.start)
			cur = frag{first.start, next.end}
		}
		return cur, nil

	case *spec.BoolExpr:
		// Both ∨ and ^ compile to alternation tracked simultaneously by
		// subset construction — the online equivalent of the paper's
		// cross-product construction (§3.4.2). In conditional mode it
		// is not an error for both operands to occur; under `strict`,
		// surplus operand events become violations, which distinguishes
		// exclusive or.
		start, end := g.newState(), g.newState()
		for _, sub := range x.Exprs {
			f, err := b.compileExpr(g, sub)
			if err != nil {
				return frag{}, err
			}
			g.addEps(start, f.start)
			g.addEps(f.end, end)
		}
		return frag{start, end}, nil

	case *spec.Optional:
		inner, err := b.compileExpr(g, x.Expr)
		if err != nil {
			return frag{}, err
		}
		start, end := g.newState(), g.newState()
		g.addEps(start, inner.start)
		g.addEps(inner.end, end)
		g.addEps(start, end)
		return frag{start, end}, nil

	case *spec.ATLeast:
		// ATLEAST(n, e₁…eₖ): at least n occurrences drawn from the
		// events, in any order; further occurrences allowed.
		cur := g.newState()
		start := cur
		for i := 0; i < x.Min; i++ {
			next := g.newState()
			for _, sub := range x.Exprs {
				f, err := b.compileExpr(g, sub)
				if err != nil {
					return frag{}, err
				}
				g.addEps(cur, f.start)
				g.addEps(f.end, next)
			}
			cur = next
		}
		for _, sub := range x.Exprs {
			f, err := b.compileExpr(g, sub)
			if err != nil {
				return frag{}, err
			}
			g.addEps(cur, f.start)
			g.addEps(f.end, cur)
		}
		return frag{start, cur}, nil

	case *spec.AssertionSite, *spec.FunctionEvent, *spec.FieldAssignEvent, *spec.InCallStack:
		sym, err := b.symbolFor(e)
		if err != nil {
			return frag{}, err
		}
		s, t := g.newState(), g.newState()
		g.addEdge(s, sym, t)
		return frag{s, t}, nil

	default:
		return frag{}, fmt.Errorf("unsupported expression %T", e)
	}
}

// determinize performs subset construction with TESLA's conditional
// semantics: for non-site symbols in conditional mode, every NFA member may
// treat the event as irrelevant and stay put (subsequence matching), so the
// DFA move always includes the current members. In strict mode members
// without a matching edge die. Pure stay-only self-loops are omitted from
// the transition table so that libtesla's “ignore irrelevant events” path
// handles them without work; explicit self-loops (ATLEAST repetition) are
// kept so each occurrence is observable.
func (b *builder) determinize(g *nfaGraph, strict bool) {
	auto := b.auto
	nsyms := len(auto.Symbols)
	auto.Trans = make([]core.TransitionSet, nsyms)

	// Subsets are canonicalised: members without outgoing symbol edges
	// cannot influence any future move, so they are dropped and only
	// their contribution to the cleanup decision (pre-site or final) is
	// kept as flags. Without this, constructs like ATLEAST(0, e₁…eₖ)
	// accumulate completed fragment ends and the subset count explodes
	// combinatorially.
	type dstate struct {
		members []int
		preSite bool
		final   bool
		id      uint32
	}
	canon := func(set []int) dstate {
		closed := g.closure(set)
		d := dstate{}
		for _, m := range closed {
			if g.preSite[m] {
				d.preSite = true
			}
			if m == g.final {
				d.final = true
			}
			if len(g.states[m].edges) > 0 {
				d.members = append(d.members, m)
			}
		}
		return d
	}
	keyOf := func(d dstate) string {
		var sb strings.Builder
		for i, s := range d.members {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d", s)
		}
		fmt.Fprintf(&sb, "|%v%v", d.preSite, d.final)
		return sb.String()
	}

	index := map[string]uint32{}
	var order []dstate

	// DFA states are numbered from 1; 0 is the pre-init state.
	intern := func(d dstate) uint32 {
		k := keyOf(d)
		if id, ok := index[k]; ok {
			return id
		}
		d.id = uint32(len(order) + 1)
		index[k] = d.id
		order = append(order, d)
		return d.id
	}
	startID := intern(canon([]int{g.start}))
	auto.Start = startID

	for i := 0; i < len(order); i++ {
		d := order[i]
		for sym := 0; sym < nsyms; sym++ {
			if sym == boundBeginID || sym == boundEndID {
				continue
			}
			var explicit, next []int
			for _, m := range d.members {
				moved := false
				for _, e := range g.states[m].edges {
					if e.sym == sym {
						explicit = append(explicit, e.to)
						moved = true
					}
				}
				if sym != siteSymbolID && !strict {
					next = append(next, m)
				} else if strict && !moved && sym != siteSymbolID {
					// member dies in strict mode
					continue
				}
			}
			next = append(next, explicit...)
			if len(next) == 0 {
				continue // no transition: required → error, else ignored
			}
			succ := canon(next)
			// Dying subsets can lose the pre-site/final flags the
			// current state carries; conditional semantics keep the
			// run's bypass options open.
			if !strict && sym != siteSymbolID {
				succ.preSite = succ.preSite || d.preSite
				succ.final = succ.final || d.final
			}
			succID := intern(succ)
			if succID == d.id && len(explicit) == 0 {
				// Stay-only self-loop: leave it to the store's
				// irrelevant-event path.
				continue
			}
			auto.Trans[sym] = append(auto.Trans[sym], core.Transition{
				From:    d.id,
				To:      succID,
				KeyMask: auto.Symbols[sym].ProvidesMask,
			})
		}
	}

	// States: 0 (pre-init) + DFA states + accept.
	auto.Accept = uint32(len(order) + 1)
	auto.States = auto.Accept + 1

	// «init»: bound begin creates an instance in the start state.
	auto.Trans[boundBeginID] = core.TransitionSet{{
		From:  0,
		To:    startID,
		Flags: core.TransInit,
	}}

	// «cleanup»: bound end accepts from any state containing a pre-site
	// member (the bypass transitions) or the final NFA state.
	for _, d := range order {
		if d.preSite || d.final {
			auto.Trans[boundEndID] = append(auto.Trans[boundEndID], core.Transition{
				From:  d.id,
				To:    auto.Accept,
				Flags: core.TransCleanup,
			})
		}
	}
}
