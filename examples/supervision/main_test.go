package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestDemoDegradationStory pins the example's load-bearing claims: drop-new
// turns overload into counted overflows and false alarms, quarantine
// replaces the false alarms with counted suppression, and injected
// allocation failures are accounted for exactly.
func TestDemoDegradationStory(t *testing.T) {
	var buf bytes.Buffer
	if err := demo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		// Part 1: overflow degrades the verdict and the health report says so.
		"false alarms: 4 violation(s) on a correct program",
		"state=degraded    live=0 violations=4 overflows=4",
		// Part 2: quarantine suppresses instead of guessing.
		"false alarms: 1 violation(s)",
		"state=QUARANTINED",
		"suppressed=6 quarantines=1",
		// Part 3: the injector's firings and the overflow counter agree.
		"injector fired 3 time(s)",
		"violations=3 overflows=3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n--- output ---\n%s", want, out)
		}
	}

	// The demo is deterministic: a second run must be byte-identical
	// (seeded injector, single thread, no wall-clock in the output).
	var again bytes.Buffer
	if err := demo(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Error("two runs of the demo differ; supervision demo is not deterministic")
	}
}
