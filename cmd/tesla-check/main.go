// tesla-check is the static model checker: it compiles csub source files,
// walks the linked program's control-flow graph against every assertion
// automaton, and classifies each assertion as PROVABLY-SAFE (its
// instrumentation can be elided), PROVABLY-FAILING (a compile-time error:
// the assertion cannot hold in any completing run) or NEEDS-RUNTIME.
//
// PROVABLY-SAFE now covers liveness too: «eventually» obligations whose
// discharge the refinement pass proves (counted-loop ranking, pruned
// infeasible branches) are reported with their proof lines. Where the
// proof fails, the missing □◇ fairness assumption is printed as an
// obligation line (and carried structurally in the -json output).
//
// Usage:
//
//	tesla-check [-entry main] [-dot] [-json] [-q] file.c...
//
// The exit status is 1 when any assertion is PROVABLY-FAILING, 2 on usage
// or compilation errors, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"

	"tesla/internal/staticcheck"
	"tesla/internal/toolchain/cli"
)

func main() {
	tool := cli.New("tesla-check", "[-entry main] [-dot] [-json] [-q] file.c...")
	entry := flag.String("entry", "main", "program entry point the analysis starts from")
	dot := flag.Bool("dot", false, "dump each assertion's explored product graph as Graphviz")
	jsonOut := flag.Bool("json", false, "emit the report as JSON (stable field order) instead of text")
	quiet := flag.Bool("q", false, "only print non-SAFE assertions")
	sources := tool.LoadSources(tool.ParseSourceArgs())

	rep, err := staticcheck.CheckSources(sources, *entry)
	if err != nil {
		tool.FatalCode(2, err)
	}

	if *jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			tool.FatalCode(2, err)
		}
	} else if *dot {
		for _, r := range rep.Results {
			if *quiet && r.Verdict == staticcheck.Safe {
				continue
			}
			r.WriteText(os.Stdout)
			fmt.Print(r.Dot())
		}
		rep.Summary(os.Stdout)
	} else {
		rep.WriteText(os.Stdout, *quiet)
	}
	_, failing, _ := rep.Counts()
	if failing > 0 {
		os.Exit(1)
	}
}
