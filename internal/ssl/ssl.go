package ssl

import (
	"fmt"

	"tesla/internal/core"
	"tesla/internal/monitor"
)

// The toy DSA-like scheme: Schnorr-style over the multiplicative group mod
// a Mersenne prime. Cryptographically worthless, structurally faithful —
// signatures are two large integers DER-encoded as a SEQUENCE, and
// verification either succeeds (1), fails (0), or errors on malformed
// input (-1): the tri-state whose misuse was CVE-2008-5077.

// P is the group modulus.
const P = 2147483647 // 2^31 − 1

// G is the generator.
const G = 7

func modexp(base, exp, mod int64) int64 {
	result := int64(1)
	base %= mod
	for exp > 0 {
		if exp&1 == 1 {
			result = result * base % mod
		}
		base = base * base % mod
		exp >>= 1
	}
	return result
}

// Key is a DSA-style keypair.
type Key struct {
	Y int64 // public: G^x mod P
	x int64 // private
}

// GenerateKey derives a keypair from a seed.
func GenerateKey(seed int64) *Key {
	x := (seed*2654435761 + 1) % (P - 1)
	if x < 0 {
		x = -x
	}
	for {
		if x <= 1 {
			x = 2
		}
		if y := modexp(G, x, P); y != 1 {
			return &Key{x: x, Y: y}
		}
		x++
	}
}

// Digest hashes a message to a group exponent.
func Digest(msg []byte) int64 {
	var h int64 = 5381
	for _, c := range msg {
		h = (h*33 + int64(c)) % (P - 1)
	}
	if h <= 0 {
		h = 1
	}
	return h
}

// Sign produces a DER-encoded (r, s) signature of the digest.
func (k *Key) Sign(digest int64) []byte {
	kk := (digest*40503 + k.x) % (P - 1)
	if kk <= 1 {
		kk = 2
	}
	r := modexp(G, kk, P)
	e := (digest + r) % (P - 1)
	s := (kk + k.x*e) % (P - 1)
	return EncodeSignature(r, s)
}

// verify checks the Schnorr relation g^s == r · y^e (mod P).
func (k *Key) verify(digest int64, r, s int64) bool {
	e := (digest + r) % (P - 1)
	lhs := modexp(G, s, P)
	rhs := r % P * modexp(k.Y, e, P) % P
	return lhs == rhs
}

// Env carries the optional TESLA monitor thread through the library stack,
// standing in for compiled-in instrumentation. IDs identify the opaque
// pointers instrumentation would capture.
type Env struct {
	Thread *monitor.Thread
	nextID core.Value
}

// NewEnv creates an environment; th may be nil (uninstrumented build).
func NewEnv(th *monitor.Thread) *Env {
	return &Env{Thread: th, nextID: 100}
}

func (e *Env) id() core.Value {
	e.nextID++
	return e.nextID
}

func (e *Env) enter(fn string, args ...core.Value) {
	if e.Thread != nil {
		e.Thread.Call(fn, args...)
	}
}

func (e *Env) exit(fn string, ret core.Value, args ...core.Value) {
	if e.Thread != nil {
		e.Thread.Return(fn, ret, args...)
	}
}

func (e *Env) site(name string, vals ...core.Value) {
	if e.Thread != nil {
		e.Thread.Site(name, vals...)
	}
}

// EVPVerifyFinal is libcrypto's verification entry point. Returns 1 for a
// valid signature, 0 for an invalid one, and -1 for an exceptional failure
// (such as a forged ASN.1 tag inside the signature).
func (e *Env) EVPVerifyFinal(ctx core.Value, sig []byte, digest int64, key *Key) int64 {
	sigID := e.id()
	keyID := e.id()
	e.enter("EVP_VerifyFinal", ctx, sigID, core.Value(len(sig)), keyID)
	var ret int64
	r, s, err := DecodeSignature(sig)
	switch {
	case err != nil:
		ret = -1
	case key.verify(digest, r, s):
		ret = 1
	default:
		ret = 0
	}
	e.exit("EVP_VerifyFinal", core.Value(ret), ctx, sigID, core.Value(len(sig)), keyID)
	return ret
}

// Server is a miniature s_server. When Malicious, it crafts a key-exchange
// signature whose first integer claims the BIT STRING type, triggering the
// exceptional failure path in clients (§3.5.1).
type Server struct {
	Key       *Key
	Malicious bool
	Document  string
}

// NewServer creates a server with a fresh key.
func NewServer(seed int64) *Server {
	return &Server{Key: GenerateKey(seed), Document: "<html>hello</html>"}
}

// keyExchange produces the signed key-exchange message.
func (srv *Server) keyExchange(clientRandom []byte) (msg []byte, sig []byte) {
	msg = append([]byte("kx:"), clientRandom...)
	sig = srv.Key.Sign(Digest(msg))
	if srv.Malicious {
		sig = ForgeSignatureTag(sig)
	}
	return msg, sig
}

// Conn is an established (toy) TLS connection.
type Conn struct {
	srv      *Server
	Verified int64 // raw EVP_VerifyFinal result, for inspection
}

// Client is a miniature libssl client. FixedCheck selects the patched
// `verified == 1` comparison; the vulnerable build treats any non-zero
// result — including the -1 error — as success.
type Client struct {
	Env        *Env
	FixedCheck bool
}

// SSLConnect performs the handshake: retrieve and verify the server's
// key-exchange signature. The verification bug lives in
// ssl3GetKeyExchange.
func (c *Client) SSLConnect(srv *Server) (*Conn, error) {
	e := c.Env
	connID := e.id()
	e.enter("SSL_connect", connID)
	defer e.exit("SSL_connect", 0, connID)
	ok, verified := c.ssl3GetKeyExchange(srv, connID)
	if !ok {
		return nil, fmt.Errorf("ssl: handshake failed (verify=%d)", verified)
	}
	return &Conn{srv: srv, Verified: verified}, nil
}

func (c *Client) ssl3GetKeyExchange(srv *Server, connID core.Value) (bool, int64) {
	e := c.Env
	e.enter("ssl3_get_key_exchange", connID)
	msg, sig := srv.keyExchange([]byte{1, 2, 3, 4})
	verified := e.EVPVerifyFinal(connID, sig, Digest(msg), srv.Key)
	var ok bool
	if c.FixedCheck {
		ok = verified == 1
	} else {
		// CVE-2008-5077: the tri-state return is used as a boolean,
		// conflating the -1 exceptional failure with success.
		ok = verified != 0
	}
	ret := core.Value(0)
	if ok {
		ret = 1
	}
	e.exit("ssl3_get_key_exchange", ret, connID)
	return ok, verified
}

// Get retrieves the document over the connection.
func (conn *Conn) Get(e *Env, path string) string {
	reqID := e.id()
	e.enter("ssl_read", reqID)
	doc := conn.srv.Document
	e.exit("ssl_read", core.Value(len(doc)), reqID)
	return doc
}
