package bench

import (
	"fmt"
	"io"

	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/toolchain"
)

// ElisionCodebase is the figure 10 codebase with one more assertion in the
// client: an audit-trail obligation whose event runs unconditionally before
// the site, so the static checker proves it PROVABLY-SAFE. The original
// EVP_VerifyFinal assertion carries a constant return pattern and stays
// NEEDS-RUNTIME — the pair shows elision removing exactly the provable
// half of the instrumentation.
func ElisionCodebase(files, fnsPerFile int) map[string]string {
	sources := OpenSSLCodebase(files, fnsPerFile)
	sources["audit.c"] = `
int audit_log(int event) {
	return event - event;
}
`
	sources["client.c"] = `
int fetch_document(int sig) {
	int ok = EVP_VerifyFinal(1, sig, 64, 2);
	int body = ssl_f_0_0(sig, ok);
	TESLA_WITHIN(main, previously(
		EVP_VerifyFinal(ANY(ptr), ANY(ptr), ANY(int), ANY(ptr)) == 1));
	TESLA_WITHIN(main, previously(audit_log(ANY(int))));
	return body;
}
int main(int sig) {
	int logged = audit_log(sig);
	return fetch_document(sig);
}
`
	return sources
}

// ElisionStats compares the instrumented program with and without
// checker-driven elision.
type ElisionStats struct {
	// SafeAssertions / RuntimeAssertions partition the verdicts.
	SafeAssertions, RuntimeAssertions int
	// FullHooks / ElidedHooks are the hook counts of the two builds;
	// ElidedAway is how many the checker removed.
	FullHooks, ElidedHooks, ElidedAway int
	// FullInstrs / ElidedInstrs count static IR instructions in the two
	// linked programs.
	FullInstrs, ElidedInstrs int
	// FullSteps / ElidedSteps are dynamic vm instruction counts for one
	// representative run.
	FullSteps, ElidedSteps int64
}

// ElisionMeasure builds the codebase twice and runs both programs once.
func ElisionMeasure(sources map[string]string) (ElisionStats, error) {
	var es ElisionStats

	full, err := toolchain.BuildProgramOpts(sources, toolchain.BuildOptions{
		Instrument: true, Check: true,
	})
	if err != nil {
		return es, err
	}
	elided, err := toolchain.BuildProgramOpts(sources, toolchain.BuildOptions{
		Instrument: true, Check: true, Elide: true,
	})
	if err != nil {
		return es, err
	}

	safe, _, runtime := full.Report.Counts()
	es.SafeAssertions, es.RuntimeAssertions = safe, runtime
	es.FullHooks = full.Stats.Hooks
	es.ElidedHooks = elided.Stats.Hooks
	es.ElidedAway = elided.Stats.ElidedHooks
	for _, f := range full.Program.Funcs {
		for _, b := range f.Blocks {
			es.FullInstrs += len(b.Instrs)
		}
	}
	for _, f := range elided.Program.Funcs {
		for _, b := range f.Blocks {
			es.ElidedInstrs += len(b.Instrs)
		}
	}

	const arg = 3 // sig % 7 == 3: the verification succeeds
	_, rtFull, err := full.Run("main", monitor.Options{Handler: core.NopHandler{}}, arg)
	if err != nil {
		return es, err
	}
	es.FullSteps = rtFull.VM.Steps()
	_, rtElided, err := elided.Run("main", monitor.Options{Handler: core.NopHandler{}}, arg)
	if err != nil {
		return es, err
	}
	es.ElidedSteps = rtElided.VM.Steps()
	return es, nil
}

// Elision prints the static-checker elision table over the synthetic
// codebase (the compile-time complement to the figure 9/10 overheads).
func Elision(w io.Writer, files, fnsPerFile int) error {
	es, err := ElisionMeasure(ElisionCodebase(files, fnsPerFile))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "static checker elision (%d files, %d fns/file): %d assertions provably safe, %d need runtime\n",
		files, fnsPerFile, es.SafeAssertions, es.RuntimeAssertions)
	Table(w, "instrumented hooks", []Row{
		{Label: "full", Value: float64(es.FullHooks), Unit: "hooks"},
		{Label: "elided", Value: float64(es.ElidedHooks), Unit: "hooks"},
	}, "full")
	Table(w, "static instructions", []Row{
		{Label: "full", Value: float64(es.FullInstrs), Unit: "instrs"},
		{Label: "elided", Value: float64(es.ElidedInstrs), Unit: "instrs"},
	}, "full")
	Table(w, "dynamic instructions (one run)", []Row{
		{Label: "full", Value: float64(es.FullSteps), Unit: "steps"},
		{Label: "elided", Value: float64(es.ElidedSteps), Unit: "steps"},
	}, "full")
	return nil
}
