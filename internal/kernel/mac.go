package kernel

import "tesla/internal/core"

// The MAC Framework separates mechanism — hooks throughout the kernel —
// from policy. This file is the mechanism: one hook function per protected
// operation, each an instrumented call observable by TESLA. The policy is
// a simple integrity-label model (a subject may act on an object whose
// label does not exceed the subject's); almost every check succeeds under
// the benchmark workloads, which is the interesting case for overhead
// measurement — the checks run, TESLA observes them, nothing fails.

// macCheck is the generic policy decision: subject credential vs object.
func (t *Thread) macCheck(hook string, cred *Ucred, obj core.Value, objLabel int64) int64 {
	t.enter(hook, cred.ID, obj)
	ret := int64(OK)
	if cred.Label < objLabel {
		ret = EACCES
	}
	t.exit(hook, core.Value(ret), cred.ID, obj)
	return ret
}

// Socket hooks (the MS assertion set).

func (t *Thread) macSocketCheckCreate(cred *Ucred) int64 {
	return t.macCheck("mac_socket_check_create", cred, 0, 0)
}
func (t *Thread) macSocketCheckBind(cred *Ucred, so *Socket) int64 {
	return t.macCheck("mac_socket_check_bind", cred, so.ID, so.Label)
}
func (t *Thread) macSocketCheckConnect(cred *Ucred, so *Socket) int64 {
	return t.macCheck("mac_socket_check_connect", cred, so.ID, so.Label)
}
func (t *Thread) macSocketCheckListen(cred *Ucred, so *Socket) int64 {
	return t.macCheck("mac_socket_check_listen", cred, so.ID, so.Label)
}
func (t *Thread) macSocketCheckAccept(cred *Ucred, so *Socket) int64 {
	return t.macCheck("mac_socket_check_accept", cred, so.ID, so.Label)
}
func (t *Thread) macSocketCheckSend(cred *Ucred, so *Socket) int64 {
	return t.macCheck("mac_socket_check_send", cred, so.ID, so.Label)
}
func (t *Thread) macSocketCheckReceive(cred *Ucred, so *Socket) int64 {
	return t.macCheck("mac_socket_check_receive", cred, so.ID, so.Label)
}
func (t *Thread) macSocketCheckPoll(cred *Ucred, so *Socket) int64 {
	return t.macCheck("mac_socket_check_poll", cred, so.ID, so.Label)
}
func (t *Thread) macSocketCheckVisible(cred *Ucred, so *Socket) int64 {
	return t.macCheck("mac_socket_check_visible", cred, so.ID, so.Label)
}
func (t *Thread) macSocketCheckStat(cred *Ucred, so *Socket) int64 {
	return t.macCheck("mac_socket_check_stat", cred, so.ID, so.Label)
}
func (t *Thread) macSocketCheckRelabel(cred *Ucred, so *Socket) int64 {
	return t.macCheck("mac_socket_check_relabel", cred, so.ID, so.Label)
}

// Vnode hooks (the MF assertion set).

func (t *Thread) macVnodeCheck(hook string, cred *Ucred, vp *Vnode) int64 {
	return t.macCheck(hook, cred, vp.ID, vp.Label)
}

// Process hooks (the MP assertion set).

func (t *Thread) macProcCheckSignal(cred *Ucred, p *Proc) int64 {
	return t.macCheck("mac_proc_check_signal", cred, p.ID, p.Cred.Label)
}
func (t *Thread) macProcCheckDebug(cred *Ucred, p *Proc) int64 {
	return t.macCheck("mac_proc_check_debug", cred, p.ID, p.Cred.Label)
}
func (t *Thread) macProcCheckSched(cred *Ucred, p *Proc) int64 {
	return t.macCheck("mac_proc_check_sched", cred, p.ID, p.Cred.Label)
}
func (t *Thread) macProcCheckWait(cred *Ucred, p *Proc) int64 {
	return t.macCheck("mac_proc_check_wait", cred, p.ID, p.Cred.Label)
}
func (t *Thread) macCredCheckSetuid(cred *Ucred, uid int64) int64 {
	return t.macCheck("mac_cred_check_setuid", cred, core.Value(uid), 0)
}
func (t *Thread) macCredCheckSetgid(cred *Ucred, gid int64) int64 {
	return t.macCheck("mac_cred_check_setgid", cred, core.Value(gid), 0)
}
func (t *Thread) macCredCheckVisible(cred *Ucred, other *Ucred) int64 {
	return t.macCheck("mac_cred_check_visible", cred, other.ID, other.Label)
}
func (t *Thread) macProcCheckSetaudit(cred *Ucred, p *Proc) int64 {
	return t.macCheck("mac_proc_check_setaudit", cred, p.ID, 0)
}
func (t *Thread) macProcCheckGetaudit(cred *Ucred, p *Proc) int64 {
	return t.macCheck("mac_proc_check_getaudit", cred, p.ID, 0)
}
func (t *Thread) macKenvCheckGet(cred *Ucred, name core.Value) int64 {
	return t.macCheck("mac_kenv_check_get", cred, name, 0)
}

// Miscellaneous MAC hooks.

func (t *Thread) macKldCheckLoad(cred *Ucred, vp *Vnode) int64 {
	return t.macCheck("mac_kld_check_load", cred, vp.ID, vp.Label)
}
func (t *Thread) macKenvCheckSet(cred *Ucred, name core.Value) int64 {
	return t.macCheck("mac_kenv_check_set", cred, name, 0)
}
