package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewKey(t *testing.T) {
	k := NewKey(10, 20)
	if !k.Bound(0) || !k.Bound(1) || k.Bound(2) || k.Bound(3) {
		t.Fatalf("bound slots wrong: %+v", k)
	}
	if k.Data[0] != 10 || k.Data[1] != 20 {
		t.Fatalf("data wrong: %+v", k)
	}
}

func TestNewKeyTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for oversized key")
		}
	}()
	NewKey(1, 2, 3, 4, 5)
}

func TestKeySet(t *testing.T) {
	k := AnyKey.Set(2, 99)
	if !k.Bound(2) || k.Data[2] != 99 {
		t.Fatalf("Set failed: %+v", k)
	}
	if k.Bound(0) || k.Bound(1) || k.Bound(3) {
		t.Fatalf("Set bound extra slots: %+v", k)
	}
}

func TestKeySetOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range slot")
		}
	}()
	AnyKey.Set(KeySize, 1)
}

func TestKeyCompatible(t *testing.T) {
	cases := []struct {
		a, b Key
		want bool
	}{
		{AnyKey, AnyKey, true},
		{AnyKey, NewKey(1), true},
		{NewKey(1), NewKey(1), true},
		{NewKey(1), NewKey(2), false},
		{NewKey(1), AnyKey.Set(1, 7), true}, // disjoint slots
		{NewKey(1, 2), NewKey(1), true},
		{NewKey(1, 2), NewKey(1, 3), false},
	}
	for i, c := range cases {
		if got := c.a.Compatible(c.b); got != c.want {
			t.Errorf("case %d: %s ~ %s = %v, want %v", i, c.a, c.b, got, c.want)
		}
		if got := c.b.Compatible(c.a); got != c.want {
			t.Errorf("case %d (sym): %s ~ %s = %v, want %v", i, c.b, c.a, got, c.want)
		}
	}
}

func TestKeySubsetOf(t *testing.T) {
	if !AnyKey.SubsetOf(NewKey(1, 2)) {
		t.Error("(∗) should be subset of everything")
	}
	if !NewKey(1).SubsetOf(NewKey(1, 2)) {
		t.Error("(1) ⊆ (1,2)")
	}
	if NewKey(1, 2).SubsetOf(NewKey(1)) {
		t.Error("(1,2) ⊄ (1)")
	}
	if NewKey(1).SubsetOf(NewKey(2)) {
		t.Error("(1) ⊄ (2)")
	}
}

func TestKeyUnion(t *testing.T) {
	got := NewKey(1).Union(AnyKey.Set(1, 9))
	want := NewKey(1, 9)
	if got != want {
		t.Fatalf("union = %s, want %s", got, want)
	}
}

func TestKeyUnionIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewKey(1).Union(NewKey(2))
}

func TestKeySpecializes(t *testing.T) {
	if !AnyKey.Specializes(NewKey(1)) {
		t.Error("(∗) specialized by (1)")
	}
	if NewKey(1).Specializes(NewKey(1)) {
		t.Error("(1) not specialized by itself")
	}
	if NewKey(1).Specializes(NewKey(2)) {
		t.Error("incompatible keys do not specialize")
	}
	if NewKey(1, 2).Specializes(NewKey(1)) {
		t.Error("less specific key does not specialize")
	}
}

func TestKeyString(t *testing.T) {
	if s := AnyKey.String(); s != "(∗)" {
		t.Errorf("AnyKey string = %q", s)
	}
	if s := NewKey(3).String(); s != "(3)" {
		t.Errorf("NewKey(3) = %q", s)
	}
	if s := AnyKey.Set(1, 5).String(); s != "(∗,5)" {
		t.Errorf("sparse key = %q", s)
	}
}

func TestKeyProject(t *testing.T) {
	k := NewKey(1, 2, 3)
	p := k.project(0b101)
	if p.Mask != 0b101 || p.Data[0] != 1 || p.Data[2] != 3 {
		t.Fatalf("project = %+v", p)
	}
	if p.Data[1] != 0 {
		t.Fatalf("projected-out slot should be zeroed: %+v", p)
	}
}

// randomKey generates a key with arbitrary mask and small values, giving a
// high collision rate so that compatibility is exercised both ways.
func randomKey(r *rand.Rand) Key {
	var k Key
	k.Mask = uint32(r.Intn(16))
	for i := 0; i < KeySize; i++ {
		if k.Bound(i) {
			k.Data[i] = Value(r.Intn(3))
		}
	}
	return k
}

type keyPair struct{ A, B Key }

func (keyPair) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(keyPair{randomKey(r), randomKey(r)})
}

// Property: compatibility is reflexive and symmetric.
func TestQuickKeyCompatibleSymmetric(t *testing.T) {
	f := func(p keyPair) bool {
		return p.A.Compatible(p.A) &&
			p.A.Compatible(p.B) == p.B.Compatible(p.A)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: subset-of is a partial order embedding — A ⊆ A∪B and B ⊆ A∪B
// whenever the union exists.
func TestQuickKeyUnionUpperBound(t *testing.T) {
	f := func(p keyPair) bool {
		if !p.A.Compatible(p.B) {
			return true
		}
		u := p.A.Union(p.B)
		return p.A.SubsetOf(u) && p.B.SubsetOf(u)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SubsetOf implies Compatible, and Specializes implies Compatible
// but not SubsetOf in the reverse direction.
func TestQuickKeySubsetImpliesCompatible(t *testing.T) {
	f := func(p keyPair) bool {
		if p.A.SubsetOf(p.B) && !p.A.Compatible(p.B) {
			return false
		}
		if p.A.Specializes(p.B) {
			return p.A.Compatible(p.B) && !p.B.SubsetOf(p.A)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: project always yields a subset of the original key.
func TestQuickKeyProjectSubset(t *testing.T) {
	f := func(p keyPair) bool {
		pr := p.A.project(p.B.Mask)
		return pr.SubsetOf(p.A)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
