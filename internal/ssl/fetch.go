package ssl

import (
	"tesla/internal/automata"
	"tesla/internal/spec"
)

// FetchAssertionName names the figure 6 assertion, written in libfetch but
// observing a call boundary between libssl and libcrypto.
const FetchAssertionName = "fetchssl"

// FetchAssertion is figure 6:
//
//	TESLA_WITHIN(main, previously(
//	    EVP_VerifyFinal(ANY(ptr), ANY(ptr), ANY(int), ANY(ptr)) == 1));
//
// Within the context of the main execution, a call to EVP_VerifyFinal
// previously returned success. The client may not have checked the return
// value correctly, but if the function returns non-success it will not
// satisfy the TESLA expression.
func FetchAssertion() *spec.Assertion {
	return spec.Within(FetchAssertionName, "main",
		spec.Previously(
			spec.Call("EVP_VerifyFinal",
				spec.AnyPtr(), spec.AnyPtr(), spec.AnyInt(), spec.AnyPtr()).ReturnsInt(1)))
}

// FetchAutomaton compiles the figure 6 assertion.
func FetchAutomaton() (*automata.Automaton, error) {
	return automata.Compile(FetchAssertion())
}

// Fetch is the libfetch client: connect over TLS and retrieve a document.
// The TESLA assertion site sits after the retrieval — within main's bound —
// so the run fails if no successful verification ever happened, regardless
// of how (or whether) libssl checked EVP_VerifyFinal's return value.
func Fetch(env *Env, c *Client, srv *Server, path string) (string, error) {
	env.enter("fetch", 0)
	defer env.exit("fetch", 0, 0)
	conn, err := c.SSLConnect(srv)
	if err != nil {
		return "", err
	}
	doc := conn.Get(env, path)
	env.site(FetchAssertionName)
	return doc, nil
}

// FetchMain runs Fetch inside the main bound (the assertion's context).
func FetchMain(env *Env, c *Client, srv *Server, path string) (string, error) {
	env.enter("main", 0)
	defer env.exit("main", 0, 0)
	return Fetch(env, c, srv, path)
}
