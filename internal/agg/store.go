package agg

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/maphash"
	"math/rand"
	"sync"
	"sync/atomic"

	"tesla/internal/trace"
)

// Store is the fleet aggregation store: per-(process, class, site)
// counters over the lifecycle events of every ingested trace frame, plus
// reservoir samples of the event windows leading into failures, plus the
// latest health counters each producer reported. It reuses the PR 3
// stripe pattern: sites hash onto lock stripes so concurrent connection
// workers aggregate in parallel, and every stripe owns its map and its
// reservoir RNG outright — no shared mutable state crosses a stripe
// boundary. Producer bookkeeping (connect/bye/disconnect) is low-rate
// and lives under one mutex.
type Store struct {
	stripes []stripe
	seed    maphash.Seed

	sampleCap int
	window    int

	// Fleet ingestion totals. Server-side queue drops are counted here
	// and per producer; everything else rolls up from the stripes and
	// producer table at query time.
	frames        atomic.Uint64
	events        atomic.Uint64
	droppedFrames atomic.Uint64
	droppedEvents atomic.Uint64

	// applyMu makes snapshots frame-atomic: every sequenced frame apply
	// (events + counters + appliedSeq advance) holds the read side, and
	// Snapshot takes the write side, so a snapshot never captures half a
	// frame's effects — the invariant that lets the ack-then-resend
	// protocol promise exactly-once accounting across a server crash.
	applyMu sync.RWMutex
	// durable is set once a snapshot loop owns this store: acks then
	// advance only to the last snapshotted (durable) sequence, so a
	// client never prunes a frame the server could still lose.
	durable atomic.Bool

	mu    sync.Mutex
	procs map[string]*producer
}

// StoreOpts configures a Store; the zero value selects the defaults.
type StoreOpts struct {
	// Stripes is the lock-stripe count (rounded up to a power of two;
	// default 16).
	Stripes int
	// SampleCap bounds each failing site's reservoir (default 4).
	SampleCap int
	// Window is how many events of leading context a failure sample
	// keeps (default 8).
	Window int
	// Seed seeds the per-stripe reservoir RNGs; a fixed seed plus a
	// deterministic ingestion order gives byte-stable samples (the
	// golden-output example relies on this).
	Seed int64
}

type stripe struct {
	mu    sync.Mutex
	sites map[siteKey]*siteAgg
	rng   *rand.Rand
	_     [32]byte // keep neighbouring stripes off one cache line
}

// siteKey identifies one aggregated cell. Process is part of the key so
// per-process breakdowns are exact; fleet-wide rollups sum over it at
// query time (fleet scale here is thousands of processes, not millions
// of sites, so query-time summation is the simple and correct trade).
type siteKey struct {
	process string
	class   string
	kind    trace.Kind // KindTransition, KindAccept or KindFail
	from    uint32
	to      uint32
	symbol  string
	verdict string
}

type siteAgg struct {
	count uint64
	// seen and samples implement reservoir sampling (algorithm R) of
	// failure windows; both stay zero/nil for non-failure sites.
	seen    uint64
	samples []Sample
}

// Sample is one reservoir-sampled failure: the failing event plus up to
// Window preceding events from the same frame.
type Sample struct {
	Process string        `json:"process"`
	Events  []trace.Event `json:"events"`
}

// producer is the per-process accounting record.
type producer struct {
	process string
	tool    string

	connections int  // live connections
	disconnects int  // connections that ended without a bye
	clean       bool // at least one bye received

	frames        uint64 // ingested
	events        uint64
	droppedFrames uint64 // server-side queue drops
	droppedEvents uint64
	ringDropped   uint64 // producer ring losses (summed from frame headers)
	badFrames     uint64 // frames that failed to decode
	dupFrames     uint64 // v2 resends deduplicated by sequence number
	dupEvents     uint64

	// Sequence watermarks (proto v2). receivedSeq is the highest sequence
	// accepted for ingestion or drop accounting — anything at or below it
	// is a duplicate resend. appliedSeq trails it by at most the worker
	// queue; durableSeq trails appliedSeq by at most one snapshot
	// interval. Acks advance to durableSeq when snapshots run, else to
	// appliedSeq.
	receivedSeq uint64
	appliedSeq  uint64
	durableSeq  uint64

	bye    Bye
	hasBye bool

	health map[string]HealthRow
}

// NewStore creates a fleet store.
func NewStore(opts StoreOpts) *Store {
	n := opts.Stripes
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so stripe selection is a mask.
	for n&(n-1) != 0 {
		n++
	}
	cap := opts.SampleCap
	if cap <= 0 {
		cap = 4
	}
	win := opts.Window
	if win <= 0 {
		win = 8
	}
	s := &Store{
		stripes:   make([]stripe, n),
		seed:      maphash.MakeSeed(),
		sampleCap: cap,
		window:    win,
		procs:     map[string]*producer{},
	}
	for i := range s.stripes {
		s.stripes[i].sites = map[siteKey]*siteAgg{}
		s.stripes[i].rng = rand.New(rand.NewSource(opts.Seed + int64(i)))
	}
	return s
}

func (s *Store) stripeOf(k siteKey) *stripe {
	var h maphash.Hash
	h.SetSeed(s.seed)
	h.WriteString(k.process)
	h.WriteByte(0)
	h.WriteString(k.class)
	h.WriteByte(byte(k.kind))
	h.WriteString(k.symbol)
	return &s.stripes[h.Sum64()&uint64(len(s.stripes)-1)]
}

// IngestTrace aggregates one (delta) trace attributed to process. It is
// the whole-trace convenience over ingest; the server's per-connection
// workers use IngestFrame on raw payloads instead.
func (s *Store) IngestTrace(process string, tr *trace.Trace) {
	s.ingestEvents(process, tr.Events, tr.Dropped)
	s.frames.Add(1)
}

// ingestEvents applies one frame's events, maintaining the trailing
// window for failure samples. Window context is frame-local: a failure in
// the first events of a delta carries less context, never wrong context.
func (s *Store) ingestEvents(process string, events []trace.Event, ringDropped uint64) {
	win := make([]trace.Event, 0, s.window)
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case trace.KindTransition:
			s.add(siteKey{process: process, class: ev.Class, kind: ev.Kind,
				from: ev.From, to: ev.To, symbol: ev.Symbol}, nil)
		case trace.KindAccept:
			s.add(siteKey{process: process, class: ev.Class, kind: ev.Kind}, nil)
		case trace.KindFail:
			sample := append(append([]trace.Event(nil), win...), *ev)
			s.add(siteKey{process: process, class: ev.Class, kind: ev.Kind,
				symbol: ev.Symbol, verdict: ev.Verdict.String()}, sample)
		}
		if s.window > 0 {
			if len(win) == s.window {
				copy(win, win[1:])
				win = win[:s.window-1]
			}
			win = append(win, *ev)
		}
	}
	s.events.Add(uint64(len(events)))

	s.mu.Lock()
	p := s.proc(process)
	p.frames++
	p.events += uint64(len(events))
	p.ringDropped += ringDropped
	s.mu.Unlock()
}

// add bumps one site, feeding the failure reservoir when a sample is
// attached.
func (s *Store) add(k siteKey, sample []trace.Event) {
	st := s.stripeOf(k)
	st.mu.Lock()
	a := st.sites[k]
	if a == nil {
		a = &siteAgg{}
		st.sites[k] = a
	}
	a.count++
	if sample != nil {
		a.seen++
		if len(a.samples) < s.sampleCap {
			a.samples = append(a.samples, Sample{Process: k.process, Events: sample})
		} else if j := st.rng.Int63n(int64(a.seen)); int(j) < s.sampleCap {
			a.samples[j] = Sample{Process: k.process, Events: sample}
		}
	}
	st.mu.Unlock()
}

// IngestFrame decodes and aggregates one FrameTrace payload: the event
// count prefix, then the binary trace. The declared count is the drop-
// accounting unit; a payload whose decode dies mid-way contributes the
// events it actually yielded and marks the producer's frame bad.
func (s *Store) IngestFrame(process string, payload []byte) error {
	declared, n := binary.Uvarint(payload)
	if n <= 0 {
		s.markBadFrame(process)
		return fmt.Errorf("agg: trace frame missing event-count prefix")
	}
	sd, err := trace.NewStreamDecoder(bytes.NewReader(payload[n:]))
	if err != nil {
		s.markBadFrame(process)
		return fmt.Errorf("agg: trace frame from %s: %w", process, err)
	}
	events := make([]trace.Event, 0, min(int(declared), 4096))
	for {
		ev, err := sd.Next()
		if err != nil {
			break // io.EOF, or corruption counted below
		}
		events = append(events, ev)
	}
	s.ingestEvents(process, events, sd.Dropped())
	s.frames.Add(1)
	if uint64(len(events)) != declared {
		s.markBadFrame(process)
		return fmt.Errorf("agg: trace frame from %s declared %d events, decoded %d", process, declared, len(events))
	}
	return nil
}

// FrameEventCount reads a FrameTrace payload's declared event count
// without decoding the trace — what drop accounting charges for a frame
// the queue rejected.
func FrameEventCount(payload []byte) uint64 {
	n, sz := binary.Uvarint(payload)
	if sz <= 0 {
		return 0
	}
	return n
}

// DropFrame records a server-side queue rejection of a trace frame:
// counted fleet-wide and against the producer, never silent.
func (s *Store) DropFrame(process string, events uint64) {
	s.droppedFrames.Add(1)
	s.droppedEvents.Add(events)
	s.mu.Lock()
	p := s.proc(process)
	p.droppedFrames++
	p.droppedEvents += events
	s.mu.Unlock()
}

// MergeHealth installs a producer's latest health report. Reports are
// cumulative per producer, so latest-wins is the correct merge; the
// fleet rollup sums the latest row of every producer.
func (s *Store) MergeHealth(process string, rows []HealthRow) {
	s.mu.Lock()
	p := s.proc(process)
	if p.health == nil {
		p.health = map[string]HealthRow{}
	}
	for _, row := range rows {
		p.health[row.Class] = row
	}
	s.mu.Unlock()
}

// proc returns (creating if needed) a producer record; s.mu must be held.
func (s *Store) proc(process string) *producer {
	p := s.procs[process]
	if p == nil {
		p = &producer{process: process}
		s.procs[process] = p
	}
	return p
}

// Connected records a producer connection from the hello handshake.
func (s *Store) Connected(h Hello) {
	s.mu.Lock()
	p := s.proc(h.Process)
	p.tool = h.Tool
	p.connections++
	s.mu.Unlock()
}

// ByeReceived records a producer's final accounting.
func (s *Store) ByeReceived(process string, b Bye) {
	s.mu.Lock()
	p := s.proc(process)
	p.bye = b
	p.hasBye = true
	p.clean = true
	s.mu.Unlock()
}

// Closed records the end of a producer connection; clean reports whether
// a bye preceded it.
func (s *Store) Closed(process string, clean bool) {
	s.mu.Lock()
	p := s.proc(process)
	p.connections--
	if !clean {
		p.disconnects++
	}
	s.mu.Unlock()
}

func (s *Store) markBadFrame(process string) {
	s.mu.Lock()
	s.proc(process).badFrames++
	s.mu.Unlock()
}

// BeginSeqFrame claims a v2 frame's sequence number for process: it
// reports true and advances the received watermark when the frame is
// fresh, and false — counting a deduplicated resend — when seq was
// already received on this or an earlier connection (or, after a
// restore, covered by the restored snapshot). A false return means the
// frame must be acked but not ingested: the accounting the client closed
// over it the first time already stands.
func (s *Store) BeginSeqFrame(process string, seq, events uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.proc(process)
	if seq <= p.receivedSeq {
		p.dupFrames++
		p.dupEvents += events
		return false
	}
	p.receivedSeq = seq
	return true
}

// ApplySeqFrame ingests one claimed v2 frame and advances the applied
// watermark, atomically with respect to Snapshot: a snapshot sees either
// none or all of a frame's effects, so a restore plus resend can never
// double-apply.
func (s *Store) ApplySeqFrame(process string, seq uint64, tracePayload []byte) error {
	s.applyMu.RLock()
	defer s.applyMu.RUnlock()
	err := s.IngestFrame(process, tracePayload)
	s.mu.Lock()
	if p := s.proc(process); seq > p.appliedSeq {
		p.appliedSeq = seq
	}
	s.mu.Unlock()
	return err
}

// DropSeqFrame records a server-side queue rejection of a claimed v2
// frame. The drop advances the applied watermark like an apply would —
// the frame's fate is decided and accounted, so it is ackable and must
// not be resent.
func (s *Store) DropSeqFrame(process string, seq, events uint64) {
	s.applyMu.RLock()
	defer s.applyMu.RUnlock()
	s.DropFrame(process, events)
	s.mu.Lock()
	if p := s.proc(process); seq > p.appliedSeq {
		p.appliedSeq = seq
	}
	s.mu.Unlock()
}

// ApplyFrame ingests one unsequenced (v1) frame under the same snapshot
// atomicity as the sequenced path.
func (s *Store) ApplyFrame(process string, payload []byte) error {
	s.applyMu.RLock()
	defer s.applyMu.RUnlock()
	return s.IngestFrame(process, payload)
}

// AckSeq returns the sequence watermark safe to acknowledge to process:
// the durable (last-snapshotted) sequence when a snapshot loop owns the
// store, the applied sequence otherwise. Acking anything further ahead
// would let the client discard frames a crash could still lose.
func (s *Store) AckSeq(process string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.proc(process)
	if s.durable.Load() {
		return p.durableSeq
	}
	return p.appliedSeq
}

// SetDurable declares whether a snapshot loop persists this store,
// switching AckSeq between the durable and applied watermarks.
func (s *Store) SetDurable(on bool) { s.durable.Store(on) }
