// tesla-instrument runs the TESLA instrumenter (§4.2) over csub sources:
// it compiles each file to IR, instruments it against a manifest (by
// default the one analysed from the same sources), links, and reports what
// was inserted. With -dump the instrumented IR is printed.
//
// Usage:
//
//	tesla-instrument [-manifest program.tesla] [-dump] [-strip] file.c...
package main

import (
	"flag"
	"fmt"
	"os"

	"tesla/internal/manifest"
	"tesla/internal/toolchain"
)

func main() {
	manifestPath := flag.String("manifest", "", "instrument against this manifest instead of the sources' own assertions")
	dump := flag.Bool("dump", false, "print the linked instrumented IR")
	strip := flag.Bool("strip", false, "produce the uninstrumented (Default) build instead")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tesla-instrument [-manifest m.tesla] [-dump] [-strip] file.c...")
		os.Exit(2)
	}

	sources := map[string]string{}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		sources[path] = string(data)
	}

	build, err := toolchain.BuildProgram(sources, !*strip)
	if err != nil {
		fatal(err)
	}

	if *manifestPath != "" {
		m, err := manifest.Load(*manifestPath)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("manifest %s: %d assertions (build used %d from sources)\n",
			*manifestPath, len(m.Assertions), len(build.Manifest.Assertions))
	}

	fmt.Printf("modules: %d  functions: %d\n", len(build.Units), len(build.Program.Funcs))
	if !*strip {
		fmt.Printf("automata: %d  hooks: %d  translators: %d  sites: %d\n",
			len(build.Autos), build.Stats.Hooks, build.Stats.Translators, build.Stats.Sites)
	}
	if *dump {
		fmt.Print(build.Program.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tesla-instrument:", err)
	os.Exit(1)
}
