package ir

import (
	"reflect"
	"testing"
)

// buildLoopFunc hand-assembles the CFG the front end emits for
//
//	int f(int n) { int i = 0; while (i < n) { i = i + 1; } return i; }
//
// block 0: entry     → br 1
// block 1: while.head → condbr 2, 3
// block 2: while.body → br 1
// block 3: while.exit → ret
func buildLoopFunc() *Func {
	f := &Func{Name: "f", NParams: 1, NRegs: 8}
	f.Blocks = []*Block{
		{Name: "entry", Instrs: []Instr{
			{Op: OpAlloca, Dst: 1, Imm: 1},
			{Op: OpStore, X: 1, Y: 0},
			{Op: OpBr, Blk1: 1},
		}},
		{Name: "while.head", Instrs: []Instr{
			{Op: OpLoad, Dst: 2, X: 1},
			{Op: OpConst, Dst: 3, Imm: 3},
			{Op: OpBin, Dst: 4, X: 2, Y: 3, Imm: int64(BinLt)},
			{Op: OpCondBr, X: 4, Blk1: 2, Blk2: 3},
		}},
		{Name: "while.body", Instrs: []Instr{
			{Op: OpLoad, Dst: 5, X: 1},
			{Op: OpConst, Dst: 6, Imm: 1},
			{Op: OpBin, Dst: 7, X: 5, Y: 6, Imm: int64(BinAdd)},
			{Op: OpStore, X: 1, Y: 7},
			{Op: OpBr, Blk1: 1},
		}},
		{Name: "while.exit", Instrs: []Instr{
			{Op: OpLoad, Dst: 2, X: 1},
			{Op: OpRet, X: 2, HasX: true},
		}},
	}
	return f
}

func TestSuccsPreds(t *testing.T) {
	f := buildLoopFunc()
	if got := f.Succs(0); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("Succs(0) = %v", got)
	}
	if got := f.Succs(1); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("Succs(1) = %v", got)
	}
	preds := f.Preds()
	if !reflect.DeepEqual(preds[1], []int{0, 2}) {
		t.Fatalf("Preds(1) = %v", preds[1])
	}
	if len(preds[0]) != 0 {
		t.Fatalf("Preds(0) = %v", preds[0])
	}
}

func TestDominators(t *testing.T) {
	f := buildLoopFunc()
	dom := f.Dominators()
	// The head dominates body and exit; the body dominates nothing else.
	if !dom[2][1] || !dom[3][1] || !dom[3][0] {
		t.Fatalf("dominators wrong: %v", dom)
	}
	if dom[3][2] {
		t.Fatal("body must not dominate exit")
	}
}

func TestLoops(t *testing.T) {
	f := buildLoopFunc()
	loops := f.Loops()
	if len(loops) != 1 {
		t.Fatalf("loops = %v", loops)
	}
	l := loops[0]
	if l.Head != 1 || !reflect.DeepEqual(l.Blocks, []int{1, 2}) || !reflect.DeepEqual(l.Latches, []int{2}) {
		t.Fatalf("loop = %+v", l)
	}
	if !l.Contains(2) || l.Contains(3) {
		t.Fatal("Contains wrong")
	}
}

func TestLoopsUnreachableBlock(t *testing.T) {
	f := buildLoopFunc()
	// A parked, unreachable block with a branch into the loop must not
	// confuse dominance or loop membership.
	f.Blocks = append(f.Blocks, &Block{Name: "dead", Instrs: []Instr{{Op: OpBr, Blk1: 1}}})
	loops := f.Loops()
	if len(loops) != 1 || !reflect.DeepEqual(loops[0].Blocks, []int{1, 2}) {
		t.Fatalf("loops with dead block = %v", loops)
	}
	if f.Dominators()[4] != nil {
		t.Fatal("unreachable block must have no dominator set")
	}
}

func TestCallGraphReachable(t *testing.T) {
	m := &Module{Name: "m", Funcs: []*Func{
		{Name: "main", Blocks: []*Block{{Instrs: []Instr{
			{Op: OpCall, Sym: "a"},
			{Op: OpRet},
		}}}},
		{Name: "a", Blocks: []*Block{{Instrs: []Instr{
			{Op: OpCall, Sym: "b"},
			{Op: OpCall, Sym: "missing"},
			{Op: OpRet},
		}}}},
		{Name: "b", Blocks: []*Block{{Instrs: []Instr{{Op: OpRet}}}}},
		{Name: "island", Blocks: []*Block{{Instrs: []Instr{{Op: OpRet}}}}},
	}}
	cg := m.CallGraph()
	if !reflect.DeepEqual(cg["a"], []string{"b", "missing"}) {
		t.Fatalf("callees(a) = %v", cg["a"])
	}
	r := m.Reachable("main")
	if !r["main"] || !r["a"] || !r["b"] || r["island"] || r["missing"] {
		t.Fatalf("reachable = %v", r)
	}
}
