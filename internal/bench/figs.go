package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/gui"
	"tesla/internal/kernel"
	"tesla/internal/monitor"
	"tesla/internal/objc"
	"tesla/internal/spec"
	"tesla/internal/xnee"
)

// Table1 prints the assertion-set table.
func Table1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: assertion sets")
	fmt.Fprintf(w, "  %-6s %-24s %10s\n", "Symbol", "Description", "Assertions")
	rows := []struct {
		sym, desc string
		set       kernel.Set
	}{
		{"MF", "MAC (filesystem)", kernel.SetMF},
		{"MS", "MAC (sockets)", kernel.SetMS},
		{"MP", "MAC (processes)", kernel.SetMP},
		{"M", "All MAC assertions", kernel.SetM},
		{"P", "Process lifetimes", kernel.SetP},
		{"All", "All TESLA assertions", kernel.SetAll},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-6s %-24s %10d\n", r.sym, r.desc, len(kernel.Assertions(r.set)))
	}
	fmt.Fprintln(w)
}

// Fig11aMeasure runs the open/close microbenchmark on one configuration.
func Fig11aMeasure(c KernelConfig, iters int) (time.Duration, error) {
	k, err := BootConfig(c, kernel.BugConfig{})
	if err != nil {
		return 0, err
	}
	th := k.NewThread()
	OpenClosePrewarm(th)
	return Measure(iters, func() { kernel.OpenClose(th, iters) }), nil
}

// OpenClosePrewarm creates the benchmark file once.
func OpenClosePrewarm(th *kernel.Thread) {
	fd := th.Open("/tmp/lat_fs")
	if fd >= 0 {
		th.Close(fd)
	}
}

// Fig11a prints the open/close microbenchmark across configurations.
func Fig11a(w io.Writer, iters int) error {
	var rows []Row
	for _, c := range KernelConfigs() {
		d, err := Fig11aMeasure(c, iters)
		if err != nil {
			return err
		}
		rows = append(rows, Row{Label: c.Name, Value: float64(d.Nanoseconds()) / 1000, Unit: "µs/op"})
	}
	Table(w, "Figure 11a: lmbench open/close microbenchmark", rows, "Release")
	fmt.Fprintln(w, "  paper shape: microbenchmarks visibly slowed, growing with assertion sets;")
	fmt.Fprintln(w, "  Debug (WITNESS+INVARIANTS) also measurably above Release")
	fmt.Fprintln(w)
	return nil
}

// MacroWorkload identifies a figure 11b macrobenchmark.
type MacroWorkload int

const (
	// OLTP is the SysBench-style socket-intensive transaction mix.
	OLTP MacroWorkload = iota
	// ClangBuild is the FS/compute-intensive compiler build.
	ClangBuild
)

func (m MacroWorkload) String() string {
	if m == OLTP {
		return "SysBench OLTP"
	}
	return "Clang build"
}

// Fig11bMeasure runs one macro workload on one configuration.
func Fig11bMeasure(c KernelConfig, workload MacroWorkload, iters int) (time.Duration, error) {
	k, err := BootConfig(c, kernel.BugConfig{})
	if err != nil {
		return 0, err
	}
	th := k.NewThread()
	switch workload {
	case OLTP:
		pair, err := kernel.SetupOLTP(th)
		if err != nil {
			return 0, err
		}
		return Measure(iters, func() {
			for i := 0; i < iters; i++ {
				kernel.OLTPTransaction(th, pair)
			}
		}), nil
	default:
		return Measure(iters, func() {
			for i := 0; i < iters; i++ {
				kernel.BuildStep(th, i)
			}
		}), nil
	}
}

// Fig11b prints both macrobenchmarks, normalised to Release.
func Fig11b(w io.Writer, iters int) error {
	for _, wl := range []MacroWorkload{OLTP, ClangBuild} {
		var rows []Row
		for _, c := range KernelConfigs() {
			d, err := Fig11bMeasure(c, wl, iters)
			if err != nil {
				return err
			}
			rows = append(rows, Row{Label: c.Name, Value: float64(d.Nanoseconds()) / 1000, Unit: "µs/tx"})
		}
		Table(w, fmt.Sprintf("Figure 11b: %s (normalised run time)", wl), rows, "Release")
	}
	fmt.Fprintln(w, "  paper shape: macro overhead ≤1.35x, proportional to instrumentation")
	fmt.Fprintln(w)
	return nil
}

// fig12Assertion builds the same assertion in both contexts.
func fig12Assertion(ctx spec.Context) *automata.Automaton {
	a := spec.Assert("fig12", ctx, spec.WithinBound("amd64_syscall"),
		spec.Previously(spec.Call("mac_socket_check_poll", spec.AnyPtr(), spec.Var("so")).ReturnsInt(0)))
	return automata.MustCompile(a)
}

// Fig12Measure times a poll-heavy workload with the assertion in the given
// context, across several concurrent threads. Global assertions require
// explicit synchronisation, which comes at a run-time cost (figure 12).
func Fig12Measure(ctx spec.Context, iters int) (time.Duration, error) {
	// The global context's cost is cross-thread serialisation, which needs
	// genuine parallelism to show; give the scheduler enough Ps even on
	// small hosts.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	auto := fig12Assertion(ctx)
	mon, err := monitor.New(monitor.Options{}, auto)
	if err != nil {
		return 0, err
	}
	k := kernel.New(kernel.Config{Monitor: mon})
	const threads = 4
	ths := make([]*kernel.Thread, threads)
	pairs := make([]kernel.OLTPPair, threads)
	for i := range ths {
		ths[i] = k.NewThread()
		pairs[i], err = kernel.SetupOLTP(ths[i])
		if err != nil {
			return 0, err
		}
	}
	var wg sync.WaitGroup
	return Measure(iters*threads, func() {
		for t := 0; t < threads; t++ {
			wg.Add(1)
			go func(t int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					ths[t].Poll(pairs[t].Client)
				}
			}(t)
		}
		wg.Wait()
	}), nil
}

// Fig12 prints the per-thread vs global comparison. The two contexts are
// measured in interleaved rounds so scheduler and cache drift do not bias
// either side.
func Fig12(w io.Writer, iters int) error {
	const rounds = 8
	var pt, gl time.Duration
	for r := 0; r < rounds; r++ {
		d, err := Fig12Measure(spec.PerThread, iters/rounds)
		if err != nil {
			return err
		}
		pt += d
		d, err = Fig12Measure(spec.Global, iters/rounds)
		if err != nil {
			return err
		}
		gl += d
	}
	pt /= rounds
	gl /= rounds
	Table(w, "Figure 12: assertion context cost (poll syscall)", []Row{
		{Label: "Per-thread", Value: float64(pt.Nanoseconds()) / 1000, Unit: "µs/op"},
		{Label: "Global", Value: float64(gl.Nanoseconds()) / 1000, Unit: "µs/op"},
	}, "Per-thread")
	fmt.Fprintln(w, "  paper shape: global requires lock-based serialisation and is slower")
	fmt.Fprintln(w)
	return nil
}

// Fig13Measure runs a workload in naive (pre-optimisation) or lazy
// (post-optimisation) mode.
func Fig13Measure(sets kernel.Set, naive bool, workload MacroWorkload, iters int) (time.Duration, error) {
	c := KernelConfig{Name: "fig13", Sets: sets, Naive: naive}
	return Fig11bMeasure(c, workload, iters)
}

// Fig13 prints the pre/post optimisation comparison of §5.2.2: the naive
// implementation did work on every system-call-related automaton at every
// syscall; the optimisation keeps a per-context record of init/cleanup
// events and initialises instances lazily.
func Fig13(w io.Writer, iters int) error {
	type cell struct {
		label string
		sets  kernel.Set
		wl    MacroWorkload
	}
	micro := []cell{
		{"MAC micro", kernel.SetM, OLTP},
		{"PROC micro", kernel.SetP, OLTP},
	}
	macro := []cell{
		{"OLTP", kernel.SetAll, OLTP},
		{"Clang build", kernel.SetAll, ClangBuild},
	}
	for _, group := range [][]cell{micro, macro} {
		var rows []Row
		for _, cl := range group {
			pre, err := Fig13Measure(cl.sets, true, cl.wl, iters)
			if err != nil {
				return err
			}
			post, err := Fig13Measure(cl.sets, false, cl.wl, iters)
			if err != nil {
				return err
			}
			rows = append(rows,
				Row{Label: cl.label + " pre", Value: float64(pre.Nanoseconds()) / 1000, Unit: "µs"},
				Row{Label: cl.label + " post", Value: float64(post.Nanoseconds()) / 1000, Unit: "µs"})
		}
		Table(w, "Figure 13: lazy-initialisation optimisation", rows, "")
	}
	fmt.Fprintln(w, "  paper shape: pre-optimisation micro ≈100x over baseline, post <7x;")
	fmt.Fprintln(w, "  macro from 2-10x down to <10% overhead")
	fmt.Fprintln(w)
	return nil
}

// Fig14aMeasure times a tight message-send loop in one tracing mode.
func Fig14aMeasure(mode objc.TraceMode, iters int) time.Duration {
	rt := objc.NewRuntime(mode)
	cls := objc.NewClass("Probe", nil)
	cls.AddMethod("ping", func(*objc.Runtime, *objc.Object, ...core.Value) core.Value { return 1 })
	obj := rt.NewObject(cls)

	switch mode {
	case objc.Interposed:
		rt.Interpose("ping", func(*objc.Object, string, []core.Value) {})
	case objc.TESLA:
		auto := automata.MustCompile(spec.Within("fig14a", "loop",
			spec.Previously(spec.AtLeast(0, spec.Msg(spec.Any("id"), "ping")))))
		m := monitor.MustNew(monitor.Options{}, auto)
		th := m.NewThread()
		rt.InterposeTESLA(th, []string{"ping"}, nil)
		th.Call("loop")
	}

	return Measure(iters, func() {
		for i := 0; i < iters; i++ {
			rt.MsgSend(obj, "ping")
		}
	})
}

// Fig14a prints the Objective-C message-send ladder.
func Fig14a(w io.Writer, iters int) {
	var rows []Row
	for _, mode := range []objc.TraceMode{objc.NoTracing, objc.TracingCompiled, objc.Interposed, objc.TESLA} {
		d := Fig14aMeasure(mode, iters)
		rows = append(rows, Row{Label: mode.String(), Value: float64(d.Nanoseconds()), Unit: "ns/msg"})
	}
	Table(w, "Figure 14a: Objective-C message-send microbenchmark", rows, "release")
	fmt.Fprintln(w, "  paper shape: TESLA up to ≈16x on the tight loop")
	fmt.Fprintln(w)
}

// Fig14bMode is one of the four figure 14b configurations.
type Fig14bMode int

const (
	// BaselineMode has tracing compiled out.
	BaselineMode Fig14bMode = iota
	// InterpositionMode has trivial interposition on every selector.
	InterpositionMode
	// TESLAMode runs the fig. 8 automaton over all selectors.
	TESLAMode
	// TracingMode adds a custom event handler generating trace records.
	TracingMode
)

func (m Fig14bMode) String() string {
	switch m {
	case BaselineMode:
		return "Baseline"
	case InterpositionMode:
		return "Interposition"
	case TESLAMode:
		return "TESLA"
	default:
		return "Tracing"
	}
}

// traceRecorder is the custom handler of §3.5.3: it formats trace records
// for every instrumented event.
type traceRecorder struct {
	core.NopHandler
	records []string
}

func (t *traceRecorder) Transition(cls *core.Class, inst *core.Instance, from, to uint32, symbol string) {
	t.records = append(t.records, fmt.Sprintf("%s: %s %d->%d", cls.Name, symbol, from, to))
}

// Fig14bSetup builds a window/run loop in the given mode.
func Fig14bSetup(mode Fig14bMode) (*gui.Window, *gui.RunLoop, error) {
	var rtMode objc.TraceMode
	switch mode {
	case BaselineMode:
		rtMode = objc.NoTracing
	case InterpositionMode:
		rtMode = objc.Interposed
	default:
		rtMode = objc.TESLA
	}
	rt := objc.NewRuntime(rtMode)
	var th *monitor.Thread
	switch mode {
	case InterpositionMode:
		for _, sel := range gui.AllSelectors() {
			rt.Interpose(sel, func(*objc.Object, string, []core.Value) {})
		}
	case TESLAMode, TracingMode:
		var events []spec.Expr
		for _, sel := range gui.AllSelectors() {
			events = append(events, spec.Msg(spec.Any("id"), sel))
		}
		auto, err := automata.Compile(spec.Within("gui:runloop", "startDrawing",
			spec.Previously(spec.AtLeast(0, events...))))
		if err != nil {
			return nil, nil, err
		}
		var handler core.Handler
		if mode == TracingMode {
			handler = &traceRecorder{}
		}
		m, err := monitor.New(monitor.Options{Handler: handler}, auto)
		if err != nil {
			return nil, nil, err
		}
		th = m.NewThread()
		rt.InterposeTESLA(th, gui.AllSelectors(), []string{"drawWithFrame:inView:"})
	}

	w := gui.NewWindow(rt, gui.NewOldBackend())
	w.AddView(gui.Rect{X: 0, Y: 0, W: 200, H: 150}, 1, 8, false)
	w.AddView(gui.Rect{X: 200, Y: 0, W: 200, H: 150}, 2, 8, true)
	w.AddView(gui.Rect{X: 0, Y: 150, W: 400, H: 150}, 3, 12, false)
	w.AddTracking(gui.Rect{X: 0, Y: 0, W: 100, H: 100}, gui.CursorIBeam)
	w.AddTracking(gui.Rect{X: 200, Y: 0, W: 100, H: 100}, gui.CursorHand)
	rl := gui.NewRunLoop(w, th)
	return w, rl, nil
}

// Fig14bMeasure replays a dialog session and returns per-batch redraw
// durations.
func Fig14bMeasure(mode Fig14bMode, iterations int) ([]time.Duration, error) {
	_, rl, err := Fig14bSetup(mode)
	if err != nil {
		return nil, err
	}
	script := xnee.DialogSession(iterations)
	out := make([]time.Duration, 0, len(script.Batches))
	for _, batch := range script.Batches {
		start := time.Now()
		rl.ProcessBatch(batch)
		out = append(out, time.Since(start))
	}
	return out, nil
}

// Fig14b prints redraw-time percentiles per mode.
func Fig14b(w io.Writer, iterations int) error {
	fmt.Fprintln(w, "Figure 14b: window redraw times (Xnee replay)")
	fmt.Fprintf(w, "  %-16s %10s %10s %10s\n", "mode", "p50", "p95", "max")
	for _, mode := range []Fig14bMode{BaselineMode, InterpositionMode, TESLAMode, TracingMode} {
		samples, err := Fig14bMeasure(mode, iterations)
		if err != nil {
			return err
		}
		p50 := Percentile(samples, 0.50)
		p95 := Percentile(samples, 0.95)
		max := Percentile(samples, 1.0)
		fmt.Fprintf(w, "  %-16s %10v %10v %10v\n", mode, p50, p95, max)
	}
	fmt.Fprintln(w, "  paper shape: majority of redraws small (partial repaints); outliers are")
	fmt.Fprintln(w, "  complete redraws; with all tracing on, redraw stays animation-smooth")
	fmt.Fprintln(w)
	return nil
}
