// Command buildgraph demonstrates the content-hash-cached build graph's
// §5.1 rebuild behaviour over a three-file program: a cold build does all
// the work, a warm rebuild does none, a function-body edit re-instruments
// only the edited unit, and an assertion edit re-instruments every unit
// (the one-to-many property) while every compile stays cached.
//
//	go run ./examples/buildgraph
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tesla/internal/toolchain"
)

func main() {
	dir := "examples/buildgraph/testdata"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	sources := map[string]string{}
	for _, name := range []string{"lib.c", "crypto.c", "client.c"} {
		text, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			fatal(err)
		}
		sources[name] = string(text)
	}

	cacheDir, err := os.MkdirTemp("", "tesla-buildgraph-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(cacheDir)
	opts := toolchain.BuildOptions{Instrument: true, CacheDir: cacheDir}

	show := func(label string, srcs map[string]string) *toolchain.Build {
		b, err := toolchain.BuildProgramOpts(srcs, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== %s\n   %s\n", label, b.Graph.Summary())
		for _, n := range b.Graph.Nodes {
			fmt.Printf("   %-20s %s\n", n.ID, n.Status)
		}
		return b
	}

	cold := show("cold build", sources)
	warm := show("warm rebuild (no edits)", sources)
	if cold.Program.String() != warm.Program.String() {
		fatal(fmt.Errorf("warm program differs from cold"))
	}

	bodyEdit := clone(sources)
	bodyEdit["lib.c"] = "int checksum(int x) { return x % 89; }\n"
	show("body edit in lib.c (one unit re-instruments)", bodyEdit)

	assertEdit := clone(sources)
	assertEdit["client.c"] = strings.Replace(assertEdit["client.c"],
		"verify(ANY(int)) == 1", "verify(ANY(int)) == 0", 1)
	show("assertion edit in client.c (every unit re-instruments)", assertEdit)
}

func clone(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "buildgraph:", err)
	os.Exit(1)
}
