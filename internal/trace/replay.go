package trace

import (
	"fmt"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/monitor"
)

// The replayer feeds a saved trace back through freshly-compiled automata,
// without the VM or the monitored system. Every replayable decision made
// during the live run is in the trace: site events carry their resolved
// incallstack branches, and instrumented (VM) runs deliver pre-matched
// events, so no memory or call stack is needed. For a single-threaded run
// the trace's Seq order is the exact live order and replay reproduces the
// live verdicts event for event; for concurrent global-context runs the
// order is one plausible linearisation of what the store observed.

// Result summarises a replay's verdicts per automaton class.
type Result struct {
	// Accepts counts accepted instances per class.
	Accepts map[string]uint64
	// Violations are the detected violations, in replay order.
	Violations []*core.Violation
}

// Signatures returns the violations' class/kind signatures, in order.
func (r *Result) Signatures() []string {
	out := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		out[i] = v.Signature()
	}
	return out
}

// Check verifies that the trace was recorded against these automata: same
// names, same order. Auto indices inside events are meaningless otherwise.
func Check(t *Trace, autos []*automata.Automaton) error {
	if len(t.Automata) != len(autos) {
		return fmt.Errorf("trace: recorded against %d automata, replaying with %d", len(t.Automata), len(autos))
	}
	for i, name := range t.Automata {
		if autos[i].Name != name {
			return fmt.Errorf("trace: automaton %d is %q in trace but %q here", i, name, autos[i].Name)
		}
	}
	return nil
}

// Replay runs the trace's program events through a fresh monitor over the
// given automata and returns the verdicts. The monitor runs without
// fail-fast regardless of how the live run was configured: a fail-fast
// trace is simply a prefix, and replaying it non-fatally still reproduces
// the violations it recorded.
//
// Replay uses default supervision policies; a run recorded under a
// different overflow policy can degrade differently (an evicted instance
// survives a drop-new replay, say) and produce a different verdict. Use
// ReplayOpts with the live run's policy options to reproduce those.
func Replay(t *Trace, autos []*automata.Automaton) (*Result, error) {
	return ReplayOpts(t, autos, monitor.Options{})
}

// ReplayOpts is Replay with explicit monitor options — the supervision
// fields (Overflow, QuarantineAfter, RearmEvents, Failure) matter when the
// recorded run degraded under a non-default policy. The Handler field is
// overridden: replay owns verdict collection.
func ReplayOpts(t *Trace, autos []*automata.Automaton, opts monitor.Options) (*Result, error) {
	counting := core.NewCountingHandler()
	opts.Handler = counting
	opts.FailFast = false
	// Replay is the reference path: it must reproduce live verdicts exactly
	// whether the live run batched or not, so the replay monitor never
	// batches — a caller's BatchSize (tesla-run flags forwarded wholesale)
	// must not leak in.
	opts.BatchSize = 0
	m, err := monitor.New(opts, autos...)
	if err != nil {
		return nil, err
	}
	if err := Feed(t, m); err != nil {
		return nil, err
	}
	res := &Result{Accepts: map[string]uint64{}, Violations: counting.Violations()}
	for _, a := range autos {
		if n := counting.Accepts(a.Name); n > 0 {
			res.Accepts[a.Name] = n
		}
	}
	return res, nil
}

// Feed drives the trace's program events through threads of m, creating
// one monitor thread per distinct recorded thread ID (in first-appearance
// order). Lifecycle events in the trace are skipped: dispatch regenerates
// them. Replayed threads get a clock that reads the recorded event times,
// so a re-recorded trace keeps its timestamps.
func Feed(t *Trace, m *monitor.Monitor) error {
	if err := Check(t, m.Automata()); err != nil {
		return err
	}
	threads := map[int]*monitor.Thread{}
	var now int64
	clock := func() int64 { return now }
	for i := range t.Events {
		ev := &t.Events[i]
		if !ev.IsProgram() {
			continue
		}
		th, ok := threads[ev.Thread]
		if !ok {
			th = m.NewThread()
			th.SetClock(clock)
			threads[ev.Thread] = th
		}
		now = ev.Time
		if err := dispatch(th, ev); err != nil {
			// Violations only surface as errors under fail-fast, which
			// Replay does not enable; anything here is structural (an
			// event that cannot be dispatched at all).
			return fmt.Errorf("trace: event #%d (%s): %w", ev.Seq, ev, err)
		}
	}
	// Defensive drain for caller-built monitors that do batch (Replay's own
	// monitors never do): the final verdicts must reflect every fed event.
	m.Drain()
	return nil
}

// dispatch feeds one recorded program event into the thread entry point it
// was captured from.
func dispatch(th *monitor.Thread, ev *Event) error {
	switch ev.Prog {
	case monitor.ProgCall:
		return th.Call(ev.Fn, ev.Vals...)
	case monitor.ProgReturn:
		return th.Return(ev.Fn, ev.Ret, ev.Vals...)
	case monitor.ProgSend:
		if len(ev.Vals) == 0 {
			return fmt.Errorf("send event without receiver")
		}
		return th.Send(ev.Fn, ev.Vals[0], ev.Vals[1:]...)
	case monitor.ProgSendReturn:
		if len(ev.Vals) == 0 {
			return fmt.Errorf("send-return event without receiver")
		}
		return th.SendReturn(ev.Fn, ev.Ret, ev.Vals[0], ev.Vals[1:]...)
	case monitor.ProgAssign:
		if len(ev.Vals) != 2 {
			return fmt.Errorf("assign event with %d values, want 2", len(ev.Vals))
		}
		return th.Assign(ev.Fn, ev.Field, ev.Vals[0], ev.Op, ev.Vals[1])
	case monitor.ProgSite:
		return th.SiteResolved(ev.Auto, ev.InStack, ev.Vals...)
	case monitor.ProgBoundBegin:
		return th.BoundBegin(ev.Slot)
	case monitor.ProgBoundEnd:
		return th.BoundEnd(ev.Slot)
	case monitor.ProgDeliver:
		return th.Deliver(ev.Auto, ev.Sym, ev.Vals...)
	default:
		return fmt.Errorf("unknown program event kind %d", ev.Prog)
	}
}

// Rerecord replays the given program events through a fresh monitor with a
// recorder attached, producing a self-consistent trace: fresh sequence
// numbers and the lifecycle events this exact event sequence causes. The
// shrinker uses it so a minimised trace is a valid trace file in its own
// right, not a hole-ridden subset. Thread IDs are renumbered in
// first-appearance order.
func Rerecord(events []Event, autos []*automata.Automaton) (*Trace, error) {
	return RerecordOpts(events, autos, monitor.Options{})
}

// RerecordOpts is Rerecord under explicit monitor options, so a trace
// shrunk under a non-default supervision policy re-records the lifecycle
// events (evictions, quarantines) that policy causes.
func RerecordOpts(events []Event, autos []*automata.Automaton, opts monitor.Options) (*Trace, error) {
	rec := NewRecorder(autos, 0)
	opts.Handler = rec
	opts.Tap = rec
	opts.FailFast = false
	// As in ReplayOpts: re-recording is a reference-path replay.
	opts.BatchSize = 0
	m, err := monitor.New(opts, autos...)
	if err != nil {
		return nil, err
	}
	sub := &Trace{FormatVersion: Version, Automata: namesOf(autos), Events: events}
	if err := Feed(sub, m); err != nil {
		return nil, err
	}
	return rec.Snapshot(), nil
}

func namesOf(autos []*automata.Automaton) []string {
	names := make([]string, len(autos))
	for i, a := range autos {
		names[i] = a.Name
	}
	return names
}
