package trace

import (
	"testing"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/monitor"
)

// TestCutSinceProgramBatch extends the exact-accounting contract to the
// batched delivery path: deltas cut between, during and long after
// ProgramBatch deliveries must account for every event exactly once —
// delivered + lost == recorded — with Seq-ordered deltas, exactly as the
// per-event path guarantees. Tiny rings force overwrites mid-batch, the
// regression the batched plane could plausibly introduce (one watermark
// update covering many pushes).
func TestCutSinceProgramBatch(t *testing.T) {
	autos := []*automata.Automaton{{Name: "a"}}
	for _, flushEvery := range []int{1, 2, 5, 100000} {
		rec := NewRecorder(autos, 8)
		sink := rec.ThreadTap(0)
		bsink, ok := sink.(monitor.BatchThreadTap)
		if !ok {
			t.Fatal("thread sink does not implement BatchThreadTap")
		}
		var cut *Cut
		var delivered, lost uint64
		flush := func() {
			tr, next := rec.CutSince(cut)
			cut = next
			delivered += uint64(len(tr.Events))
			lost += tr.Dropped
			for i := 1; i < len(tr.Events); i++ {
				if tr.Events[i].Seq <= tr.Events[i-1].Seq {
					t.Fatal("delta not Seq-ordered")
				}
			}
		}
		var total uint64
		n := core.Value(0)
		batches := 0
		for total < 400 {
			// Batch sizes sweep 1..13: smaller, equal to and past the ring
			// capacity, so a single ProgramBatch can overwrite its own
			// events before any cut sees them.
			size := batches%13 + 1
			evs := make([]monitor.ProgramEvent, size)
			for i := range evs {
				evs[i] = monitor.ProgramEvent{Kind: monitor.ProgCall, Fn: "f", Vals: []core.Value{n}}
				n++
			}
			bsink.ProgramBatch(evs)
			total += uint64(size)
			// The per-event path interleaves with batches on the same sink
			// (a thread whose ring drained mid-event falls back to it).
			sink.ProgramEvent(monitor.ProgramEvent{Kind: monitor.ProgReturn, Fn: "f"})
			total++
			batches++
			if batches%flushEvery == 0 {
				flush()
			}
		}
		flush()
		if delivered+lost != total {
			t.Fatalf("flushEvery=%d: delivered %d + lost %d != recorded %d",
				flushEvery, delivered, lost, total)
		}
		if rec.EventCount() != total {
			t.Fatalf("flushEvery=%d: EventCount %d != recorded %d", flushEvery, rec.EventCount(), total)
		}
		if flushEvery == 100000 && lost == 0 {
			t.Fatal("single final cut over a tiny ring lost nothing; batched overflow accounting untested")
		}
	}
}

// TestProgramBatchSeqInvariant pins the ordering contract the replayer and
// dtrace rely on: within one ProgramBatch delivery, assigned Seqs are
// consecutive and in slice order, and a later lifecycle event always gets a
// larger Seq than the whole batch flushed before it.
func TestProgramBatchSeqInvariant(t *testing.T) {
	autos := []*automata.Automaton{{Name: "a"}}
	cls := &core.Class{Name: "a", States: 4, Limit: 4}
	rec := NewRecorder(autos, 64)
	bsink := rec.ThreadTap(0).(monitor.BatchThreadTap)

	evs := make([]monitor.ProgramEvent, 5)
	for i := range evs {
		evs[i] = monitor.ProgramEvent{Kind: monitor.ProgCall, Fn: "f", Vals: []core.Value{core.Value(i)}}
	}
	bsink.ProgramBatch(evs)
	rec.Transition(cls, &core.Instance{Key: core.NewKey(1)}, 0, 1, "sym")

	tr := rec.Snapshot()
	if len(tr.Events) != 6 {
		t.Fatalf("%d events recorded, want 6", len(tr.Events))
	}
	for i := 0; i < 5; i++ {
		ev := tr.Events[i]
		if ev.Seq != uint64(i+1) || !ev.IsProgram() || len(ev.Vals) != 1 || ev.Vals[0] != core.Value(i) {
			t.Fatalf("batch event %d out of order: %+v", i, ev)
		}
	}
	if life := tr.Events[5]; life.Kind != KindTransition || life.Seq != 6 {
		t.Fatalf("lifecycle event did not sequence after the batch: %+v", life)
	}
}
