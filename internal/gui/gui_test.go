package gui

import (
	"strings"
	"testing"

	"tesla/internal/automata"
	"tesla/internal/core"
	"tesla/internal/monitor"
	"tesla/internal/objc"
	"tesla/internal/spec"
)

// traceAutomaton builds the figure 8 tracing assertion over the full
// instrumented selector list.
func traceAutomaton(t *testing.T) *automata.Automaton {
	t.Helper()
	var events []spec.Expr
	for _, sel := range AllSelectors() {
		events = append(events, spec.Msg(spec.Any("id"), sel))
	}
	a := spec.Within("gui:runloop", "startDrawing",
		spec.Previously(spec.AtLeast(0, events...)))
	auto, err := automata.Compile(a)
	if err != nil {
		t.Fatal(err)
	}
	return auto
}

func teslaWindow(t *testing.T, be Backend, deliveryBug bool) (*Window, *RunLoop, *core.CountingHandler) {
	t.Helper()
	auto := traceAutomaton(t)
	h := core.NewCountingHandler()
	m := monitor.MustNew(monitor.Options{Handler: h}, auto)
	th := m.NewThread()
	rt := objc.NewRuntime(objc.TESLA)
	rt.InterposeTESLA(th, AllSelectors(), []string{"drawWithFrame:inView:"})
	w := NewWindow(rt, be)
	w.DeliveryBug = deliveryBug
	rl := NewRunLoop(w, th)
	return w, rl, h
}

func standardScene(w *Window) {
	w.AddView(Rect{0, 0, 200, 100}, 1, 4, false)
	w.AddView(Rect{0, 100, 200, 100}, 2, 4, true) // nested: non-LIFO restore
	w.AddView(Rect{200, 0, 200, 200}, 3, 6, false)
	w.AddTracking(Rect{0, 0, 100, 100}, CursorIBeam)
	w.AddTracking(Rect{200, 0, 100, 100}, CursorHand)
}

func TestBackendsAgreeOnLIFO(t *testing.T) {
	// Without non-LIFO restores, old and new back ends render the same.
	run := func(be Backend) int64 {
		rt := objc.NewRuntime(objc.NoTracing)
		w := NewWindow(rt, be)
		w.AddView(Rect{0, 0, 200, 100}, 1, 4, false)
		rl := NewRunLoop(w, nil)
		rl.ProcessBatch([]Event{{Kind: Expose}})
		return be.Checksum()
	}
	if a, b := run(NewOldBackend()), run(NewNewBackend()); a != b {
		t.Fatalf("LIFO-only scenes should agree: %d vs %d", a, b)
	}
}

// TestNonLIFOBackendBug reproduces the second §3.5.3 bug: the new back end
// cannot save and restore graphics states in a non-LIFO order, so scenes
// using that (valid) sequence render differently.
func TestNonLIFOBackendBug(t *testing.T) {
	run := func(be Backend) int64 {
		rt := objc.NewRuntime(objc.NoTracing)
		w := NewWindow(rt, be)
		standardScene(w)
		rl := NewRunLoop(w, nil)
		rl.ProcessBatch([]Event{{Kind: Expose}})
		rl.ProcessBatch([]Event{{Kind: Expose}})
		return be.Checksum()
	}
	old := run(NewOldBackend())
	new1 := run(NewNewBackend())
	if old == new1 {
		t.Fatal("non-LIFO scene should expose the new back end's bug")
	}
}

// TestTESLATraceLocalisesBackendBug: the event traces TESLA generates show
// the non-LIFO grestoreToken: following nested gsaves — exactly the
// sequence the new back end's author did not believe was valid.
func TestTESLATraceLocalisesBackendBug(t *testing.T) {
	w, rl, h := teslaWindow(t, NewNewBackend(), false)
	standardScene(w)
	rl.ProcessBatch([]Event{{Kind: Expose}})

	var sawToken, sawSave bool
	for e, n := range h.Edges() {
		if n == 0 {
			continue
		}
		if strings.Contains(e.Symbol, "grestoreToken:") {
			sawToken = true
		}
		if strings.Contains(e.Symbol, "gsave") {
			sawSave = true
		}
	}
	if !sawToken || !sawSave {
		t.Fatalf("trace missing the non-LIFO evidence: token=%v save=%v", sawToken, sawSave)
	}
	if vs := h.Violations(); len(vs) != 0 {
		t.Fatalf("tracing assertion must not fail: %v", vs)
	}
}

// TestCursorBugReproduced: with the event-delivery bug, an out-and-back-in
// movement within one batch pushes the same cursor twice with one pop —
// leaving the cursor stack wrong, as in the June 2013 GNUstep report.
func TestCursorBugReproduced(t *testing.T) {
	run := func(bug bool) (pushes, pops uint64, stack []int64) {
		w, rl, h := teslaWindow(t, NewOldBackend(), bug)
		w.AddTracking(Rect{0, 0, 100, 100}, CursorIBeam)
		// enter; scroll invalidates the tracking rects while the
		// pointer stays inside; wiggle; leave.
		rl.ProcessBatch([]Event{{Kind: MouseMove, X: 10, Y: 10}})
		rl.ProcessBatch([]Event{
			{Kind: Invalidate},
			{Kind: MouseMove, X: 12, Y: 10},
		})
		rl.ProcessBatch([]Event{{Kind: MouseMove, X: 200, Y: 10}})
		for e, n := range h.Edges() {
			if strings.Contains(e.Symbol, "push") {
				pushes += n
			}
			if strings.Contains(e.Symbol, "pop") {
				pops += n
			}
		}
		return pushes, pops, w.CursorStack
	}

	p1, q1, stack1 := run(false)
	if p1 != q1 || len(stack1) != 0 {
		t.Fatalf("correct delivery should balance: push=%d pop=%d stack=%v", p1, q1, stack1)
	}

	p2, q2, stack2 := run(true)
	if p2 <= q2 {
		t.Fatalf("bug should push more than pop: push=%d pop=%d", p2, q2)
	}
	if len(stack2) == 0 {
		t.Fatal("bug should leave a stuck cursor on the stack")
	}
}

// TestRedrawCounts: clicks repaint one view; expose repaints all.
func TestRedrawCounts(t *testing.T) {
	rt := objc.NewRuntime(objc.NoTracing)
	be := NewOldBackend()
	w := NewWindow(rt, be)
	standardScene(w)
	rl := NewRunLoop(w, nil)

	before := rt.MsgCount
	rl.ProcessBatch([]Event{{Kind: Click, X: 10, Y: 10}})
	partial := rt.MsgCount - before

	before = rt.MsgCount
	rl.ProcessBatch([]Event{{Kind: Expose}})
	full := rt.MsgCount - before

	if full <= partial {
		t.Fatalf("expose (%d sends) should out-draw a click (%d sends)", full, partial)
	}
}

// TestTraceModesLadder: each tracing mode adds dispatch work.
func TestTraceModesLadder(t *testing.T) {
	send := func(mode objc.TraceMode, interpose bool) uint64 {
		rt := objc.NewRuntime(mode)
		cls := objc.NewClass("Probe", nil)
		cls.AddMethod("ping", func(*objc.Runtime, *objc.Object, ...core.Value) core.Value { return 1 })
		obj := rt.NewObject(cls)
		if interpose {
			calls := 0
			rt.Interpose("ping", func(*objc.Object, string, []core.Value) { calls++ })
		}
		for i := 0; i < 100; i++ {
			rt.MsgSend(obj, "ping")
		}
		return rt.MsgCount
	}
	if send(objc.NoTracing, false) != 100 {
		t.Fatal("dispatch count wrong")
	}
	// Interposition hooks are ignored in NoTracing mode.
	rt := objc.NewRuntime(objc.NoTracing)
	cls := objc.NewClass("Probe", nil)
	hits := 0
	cls.AddMethod("ping", func(*objc.Runtime, *objc.Object, ...core.Value) core.Value { return 0 })
	rt.Interpose("ping", func(*objc.Object, string, []core.Value) { hits++ })
	obj := rt.NewObject(cls)
	rt.MsgSend(obj, "ping")
	if hits != 0 {
		t.Fatal("release build must not consult the interposition table")
	}
	rt.Mode = objc.Interposed
	rt.MsgSend(obj, "ping")
	if hits != 1 {
		t.Fatal("interposed build must fire the hook")
	}
}

// TestObjCInheritanceAndErrors covers method lookup through superclasses
// and unknown-selector panics.
func TestObjCInheritanceAndErrors(t *testing.T) {
	rt := objc.NewRuntime(objc.NoTracing)
	base := objc.NewClass("Base", nil)
	base.AddMethod("describe", func(*objc.Runtime, *objc.Object, ...core.Value) core.Value { return 7 })
	derived := objc.NewClass("Derived", base)
	obj := rt.NewObject(derived)
	if got := rt.MsgSend(obj, "describe"); got != 7 {
		t.Fatalf("inherited dispatch = %d", got)
	}
	if !rt.RespondsTo(obj, "describe") || rt.RespondsTo(obj, "nope") {
		t.Fatal("RespondsTo wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown selector should panic")
		}
	}()
	rt.MsgSend(obj, "nope")
}

// TestProfilerFindsRedundantRestores reproduces the §3.5.3 profiling
// finding: cells set their own colour and location, so the save/restore
// pairs around their draws are elidable — visible only in dynamic traces.
func TestProfilerFindsRedundantRestores(t *testing.T) {
	auto := traceAutomaton(t)
	prof := NewProfiler()
	m := monitor.MustNew(monitor.Options{Handler: prof}, auto)
	th := m.NewThread()
	rt := objc.NewRuntime(objc.TESLA)
	rt.InterposeTESLA(th, AllSelectors(), nil)
	w := NewWindow(rt, NewOldBackend())
	w.AddView(Rect{0, 0, 200, 100}, 1, 6, false) // per-cell save/restore pairs
	rl := NewRunLoop(w, th)
	rl.ProcessBatch([]Event{{Kind: Expose}})

	stats := AnalyzeSaveRestore(prof.Trace())
	if stats.Saves == 0 || stats.Saves != stats.Restores {
		t.Fatalf("unbalanced trace: %+v", stats)
	}
	// Every per-cell save window contains only colour/location/attribute
	// changes: all of them are elidable.
	if stats.Redundant == 0 {
		t.Fatalf("profiler found no optimisation opportunities: %+v", stats)
	}
	if stats.Redundant > stats.Restores {
		t.Fatalf("impossible stats: %+v", stats)
	}
}

func TestSelectorOf(t *testing.T) {
	cases := map[string]string{
		"[ANY(id) gsave]":                                "gsave",
		"[ANY(id) setColor: ANY(x)]":                     "setColor:",
		"[ANY(id) drawWithFrame: ANY(a) inView: ANY(b)]": "drawWithFrame:inView:",
		"plainsymbol":                                    "plainsymbol",
	}
	for in, want := range cases {
		if got := selectorOf(in); got != want {
			t.Errorf("selectorOf(%q) = %q, want %q", in, got, want)
		}
	}
}
